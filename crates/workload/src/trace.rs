//! Query-trace capture and replay.
//!
//! Figure runs are reproducible from seeds, but debugging a divergence (or
//! comparing cache policies on byte-identical inputs across machines and
//! versions) wants the actual query sequence on disk. A trace is the flat
//! `(time_step, op, key)` stream; the format is line-oriented so it can be
//! inspected, diffed and edited by hand:
//!
//! ```text
//! step,key        # a read (the original v1 form)
//! step,w,key      # a write
//! step,r,key      # a read, tagged explicitly
//! ```
//!
//! Read-only traces serialize exactly as the v1 `step,key` format, so
//! pre-zoo traces replay unchanged and new read-only captures stay
//! byte-compatible with old readers.

use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};

use crate::driver::Op;

/// An in-memory query trace.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    events: Vec<(u64, Op, u64)>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Capture a trace from a `(step, key)` iterator (e.g.
    /// [`crate::driver::QueryStream::take_steps`]); every event is a read.
    ///
    /// # Panics
    ///
    /// Panics if steps are not non-decreasing — a trace must replay in the
    /// order the workload produced it.
    pub fn capture(events: impl IntoIterator<Item = (u64, u64)>) -> Self {
        Self::capture_ops(events.into_iter().map(|(s, k)| (s, Op::Read, k)))
    }

    /// Capture a trace from a full `(step, op, key)` iterator (e.g.
    /// [`crate::driver::QueryStream::take_steps_ops`]).
    ///
    /// # Panics
    ///
    /// Panics if steps are not non-decreasing.
    pub fn capture_ops(events: impl IntoIterator<Item = (u64, Op, u64)>) -> Self {
        let events: Vec<(u64, Op, u64)> = events.into_iter().collect();
        assert!(
            events.windows(2).all(|w| w[0].0 <= w[1].0),
            "trace steps must be non-decreasing"
        );
        Self { events }
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace holds no queries.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The last time step (0 if empty).
    pub fn steps(&self) -> u64 {
        self.events.last().map(|&(s, _, _)| s + 1).unwrap_or(0)
    }

    /// Number of write events.
    pub fn writes(&self) -> usize {
        self.events
            .iter()
            .filter(|(_, op, _)| *op == Op::Write)
            .count()
    }

    /// Iterate over `(step, key)` pairs, ops dropped.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.events.iter().map(|&(s, _, k)| (s, k))
    }

    /// Iterate over full `(step, op, key)` triples.
    pub fn iter_ops(&self) -> impl Iterator<Item = (u64, Op, u64)> + '_ {
        self.events.iter().copied()
    }

    /// Serialize as trace lines (reads in the v1 `step,key` form, writes
    /// as `step,w,key`).
    pub fn write_to<W: Write>(&self, w: W) -> io::Result<()> {
        let mut w = BufWriter::new(w);
        writeln!(w, "# elastic-cloud-cache query trace v1")?;
        writeln!(
            w,
            "# {} queries ({} writes) over {} time steps",
            self.len(),
            self.writes(),
            self.steps()
        )?;
        for &(step, op, key) in &self.events {
            match op {
                Op::Read => writeln!(w, "{step},{key}")?,
                Op::Write => writeln!(w, "{step},w,{key}")?,
            }
        }
        w.flush()
    }

    /// Parse the [`Trace::write_to`] format. Blank lines and `#` comments
    /// are skipped; malformed lines and step regressions are errors.
    pub fn read_from<R: Read>(r: R) -> io::Result<Trace> {
        let mut events = Vec::new();
        let mut last_step = 0u64;
        for (no, line) in BufReader::new(r).lines().enumerate() {
            let line = line?;
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let bad = |msg: &str| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: {msg}: {line:?}", no + 1),
                )
            };
            let fields: Vec<&str> = line.split(',').map(str::trim).collect();
            let (s, op, k) = match fields.as_slice() {
                [s, k] => (*s, Op::Read, *k),
                [s, t, k] => {
                    let mut chars = t.chars();
                    let op = match (chars.next().and_then(Op::from_tag), chars.next()) {
                        (Some(op), None) => op,
                        _ => return Err(bad("bad op tag (expected r or w)")),
                    };
                    (*s, op, *k)
                }
                _ => return Err(bad("expected step,key or step,op,key")),
            };
            let step: u64 = s.parse().map_err(|_| bad("bad step"))?;
            let key: u64 = k.parse().map_err(|_| bad("bad key"))?;
            if step < last_step {
                return Err(bad("steps went backwards"));
            }
            last_step = step;
            events.push((step, op, key));
        }
        Ok(Trace { events })
    }

    /// Save to a file.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> io::Result<()> {
        self.write_to(std::fs::File::create(path)?)
    }

    /// Load from a file.
    pub fn load(path: impl AsRef<std::path::Path>) -> io::Result<Trace> {
        Self::read_from(std::fs::File::open(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::QueryStream;
    use crate::keys::KeyDist;
    use crate::schedule::RateSchedule;

    #[test]
    fn capture_and_iterate() {
        let stream = QueryStream::new(RateSchedule::constant(3), KeyDist::uniform(100), 5);
        let t = Trace::capture(stream.take_steps(4));
        assert_eq!(t.len(), 12);
        assert_eq!(t.steps(), 4);
        let replayed: Vec<(u64, u64)> = t.iter().collect();
        let original: Vec<(u64, u64)> = stream.take_steps(4).collect();
        assert_eq!(replayed, original);
    }

    #[test]
    fn roundtrips_through_the_text_format() {
        let stream = QueryStream::new(
            RateSchedule::paper_eviction_phases(),
            KeyDist::uniform(1 << 15),
            9,
        );
        let t = Trace::capture(stream.take_steps(20));
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        let back = Trace::read_from(&buf[..]).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn ops_roundtrip_through_the_text_format() {
        let stream = QueryStream::new(RateSchedule::constant(6), KeyDist::uniform(1 << 10), 21)
            .with_write_ratio(0.4);
        let t = Trace::capture_ops(stream.take_steps_ops(15));
        assert!(t.writes() > 0, "expected some writes at ratio 0.4");
        assert!(t.writes() < t.len());
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        let back = Trace::read_from(&buf[..]).unwrap();
        assert_eq!(back, t);
        let original: Vec<_> = stream.take_steps_ops(15).collect();
        let replayed: Vec<_> = back.iter_ops().collect();
        assert_eq!(replayed, original);
    }

    #[test]
    fn read_only_traces_serialize_in_v1_form() {
        let t = Trace::capture(vec![(0, 5), (1, 9)]);
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("0,5\n"), "v1 two-field lines expected");
        assert!(!text.contains(",r,"), "reads must not carry a tag");
    }

    #[test]
    fn parser_skips_comments_and_rejects_garbage() {
        let good = "# header\n\n0,5\n0,w,7\n1,r,8\n2,9\n";
        let t = Trace::read_from(good.as_bytes()).unwrap();
        assert_eq!(
            t.iter_ops().collect::<Vec<_>>(),
            vec![
                (0, Op::Read, 5),
                (0, Op::Write, 7),
                (1, Op::Read, 8),
                (2, Op::Read, 9)
            ]
        );

        for bad in [
            "0;5\n",
            "x,1\n",
            "1,y\n",
            "5,1\n2,2\n",
            "0,z,5\n",
            "0,ww,5\n",
            "0,w,5,6\n",
        ] {
            assert!(
                Trace::read_from(bad.as_bytes()).is_err(),
                "accepted {bad:?}"
            );
        }
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("ecc-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.trace");
        let t = Trace::capture_ops(vec![(0, Op::Read, 1), (0, Op::Write, 2), (1, Op::Read, 3)]);
        t.save(&path).unwrap();
        assert_eq!(Trace::load(&path).unwrap(), t);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn capture_rejects_unordered_steps() {
        Trace::capture(vec![(3, 1), (1, 2)]);
    }

    #[test]
    fn empty_trace_behaviour() {
        let t = Trace::new();
        assert!(t.is_empty());
        assert_eq!(t.steps(), 0);
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        assert_eq!(Trace::read_from(&buf[..]).unwrap(), t);
    }
}
