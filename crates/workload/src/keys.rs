//! Key distributions (`rand_coordinates` in the paper's loop).

use rand::rngs::SmallRng;
use rand::Rng;

/// How query keys are drawn from the key space.
#[derive(Debug, Clone)]
pub enum KeyDist {
    /// Uniform over `[0, space)` — the paper's "randomized inputs over 64K
    /// possibilities", explicitly the worst case for reuse.
    Uniform {
        /// Key-space size.
        space: u64,
    },
    /// Zipfian with exponent `s` over `[0, space)`: rank-`i` key has
    /// probability ∝ `1 / i^s`. Models realistic skewed interest (the Haiti
    /// scenario of the introduction, where some map tiles are far hotter).
    Zipf {
        /// Key-space size.
        space: u64,
        /// Skew exponent (`0` degenerates to uniform).
        s: f64,
        /// Precomputed CDF for inverse-transform sampling.
        cdf: Vec<f64>,
    },
    /// A hot set: with probability `hot_prob` draw uniformly from the first
    /// `hot_keys` keys, otherwise uniformly from the whole space.
    Hotspot {
        /// Key-space size.
        space: u64,
        /// Size of the hot set.
        hot_keys: u64,
        /// Probability a query targets the hot set.
        hot_prob: f64,
    },
    /// A hot set whose location *rotates* through the key space every
    /// `rotate_every` time steps — the case that breaks single-copy
    /// placement (CoT, arXiv:2006.08067): whichever node owns the current
    /// hot window melts, then the heat moves on. Sampling is step-aware
    /// via [`KeyDist::sample_at`]; step-blind [`KeyDist::sample`] sees the
    /// step-0 hot set.
    ShiftingHotspot {
        /// Key-space size.
        space: u64,
        /// Size of the hot set.
        hot_keys: u64,
        /// Probability a query targets the current hot set.
        hot_prob: f64,
        /// Steps between hot-set rotations (the set advances by
        /// `hot_keys` positions each rotation).
        rotate_every: u64,
    },
    /// A weighted mix of tenants, each owning a disjoint contiguous slice
    /// of the key space with its own inner distribution. Models the
    /// multi-tenant cloud cache: capacity weights decide how often each
    /// tenant queries, key slices keep their data disjoint.
    MultiTenant {
        /// Total key-space size (sum of tenant spaces).
        space: u64,
        /// Per-tenant `(base_key, inner_dist)`; tenant `i` draws from
        /// `[base, base + inner.space())`.
        tenants: Vec<(u64, KeyDist)>,
        /// Cumulative normalized weights for tenant selection
        /// (`cum_weights[i]` = P(tenant ≤ i)).
        cum_weights: Vec<f64>,
    },
}

impl KeyDist {
    /// Uniform over `[0, space)`.
    ///
    /// # Panics
    ///
    /// Panics if `space == 0`.
    pub fn uniform(space: u64) -> Self {
        assert!(space > 0, "key space must be non-empty");
        KeyDist::Uniform { space }
    }

    /// Zipfian over `[0, space)` with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `space == 0`, `space > 2^24` (CDF table too large), or `s`
    /// is negative/non-finite.
    pub fn zipf(space: u64, s: f64) -> Self {
        assert!(space > 0, "key space must be non-empty");
        assert!(space <= 1 << 24, "zipf CDF table would be too large");
        assert!(s >= 0.0 && s.is_finite(), "exponent must be non-negative");
        let mut cdf = Vec::with_capacity(space as usize);
        let mut acc = 0.0f64;
        for i in 1..=space {
            acc += 1.0 / (i as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        KeyDist::Zipf { space, s, cdf }
    }

    /// Hotspot distribution.
    ///
    /// # Panics
    ///
    /// Panics on an empty space, `hot_keys` outside `(0, space]`, or
    /// `hot_prob` outside `[0, 1]`.
    pub fn hotspot(space: u64, hot_keys: u64, hot_prob: f64) -> Self {
        assert!(space > 0, "key space must be non-empty");
        assert!(
            hot_keys > 0 && hot_keys <= space,
            "hot set must be within the key space"
        );
        assert!((0.0..=1.0).contains(&hot_prob), "probability out of range");
        KeyDist::Hotspot {
            space,
            hot_keys,
            hot_prob,
        }
    }

    /// A hot set of `hot_keys` keys hit with probability `hot_prob`,
    /// rotating forward by `hot_keys` positions every `rotate_every` steps.
    ///
    /// # Panics
    ///
    /// Panics on an empty space, `hot_keys` outside `(0, space]`,
    /// `hot_prob` outside `[0, 1]`, or `rotate_every == 0`.
    pub fn shifting_hotspot(space: u64, hot_keys: u64, hot_prob: f64, rotate_every: u64) -> Self {
        assert!(space > 0, "key space must be non-empty");
        assert!(
            hot_keys > 0 && hot_keys <= space,
            "hot set must be within the key space"
        );
        assert!((0.0..=1.0).contains(&hot_prob), "probability out of range");
        assert!(rotate_every > 0, "rotation period must be positive");
        KeyDist::ShiftingHotspot {
            space,
            hot_keys,
            hot_prob,
            rotate_every,
        }
    }

    /// A multi-tenant mix: each `(weight, dist)` pair is one tenant; the
    /// tenants' key slices are laid out back to back, and a query picks its
    /// tenant with probability proportional to `weight`.
    ///
    /// # Panics
    ///
    /// Panics if `tenants` is empty or any weight is non-positive or
    /// non-finite.
    pub fn multi_tenant(tenants: Vec<(f64, KeyDist)>) -> Self {
        assert!(!tenants.is_empty(), "need at least one tenant");
        assert!(
            tenants.iter().all(|(w, _)| *w > 0.0 && w.is_finite()),
            "tenant weights must be positive and finite"
        );
        let total_w: f64 = tenants.iter().map(|(w, _)| *w).sum();
        let mut cum_weights = Vec::with_capacity(tenants.len());
        let mut acc = 0.0f64;
        let mut base = 0u64;
        let mut laid_out = Vec::with_capacity(tenants.len());
        for (w, dist) in tenants {
            acc += w / total_w;
            cum_weights.push(acc);
            let span = dist.space();
            laid_out.push((base, dist));
            base += span;
        }
        // Guard against float drift: the last tenant always matches.
        if let Some(last) = cum_weights.last_mut() {
            *last = 1.0;
        }
        KeyDist::MultiTenant {
            space: base,
            tenants: laid_out,
            cum_weights,
        }
    }

    /// The key-space size.
    pub fn space(&self) -> u64 {
        match *self {
            KeyDist::Uniform { space }
            | KeyDist::Zipf { space, .. }
            | KeyDist::Hotspot { space, .. }
            | KeyDist::ShiftingHotspot { space, .. }
            | KeyDist::MultiTenant { space, .. } => space,
        }
    }

    /// Draw one key, step-blind: shifting hot sets are frozen at step 0.
    /// Prefer [`KeyDist::sample_at`] when a time step is in scope.
    pub fn sample(&self, rng: &mut SmallRng) -> u64 {
        self.sample_at(rng, 0)
    }

    /// Draw one key for time step `step`. Time-invariant distributions
    /// ignore `step` and draw identically to [`KeyDist::sample`].
    pub fn sample_at(&self, rng: &mut SmallRng, step: u64) -> u64 {
        match self {
            KeyDist::Uniform { space } => rng.gen_range(0..*space),
            KeyDist::Zipf { cdf, .. } => {
                let u: f64 = rng.gen();
                // First rank whose cumulative mass reaches u.
                cdf.partition_point(|&c| c < u) as u64
            }
            KeyDist::Hotspot {
                space,
                hot_keys,
                hot_prob,
            } => {
                if rng.gen::<f64>() < *hot_prob {
                    rng.gen_range(0..*hot_keys)
                } else {
                    rng.gen_range(0..*space)
                }
            }
            KeyDist::ShiftingHotspot {
                space,
                hot_keys,
                hot_prob,
                rotate_every,
            } => {
                if rng.gen::<f64>() < *hot_prob {
                    let offset = (step / rotate_every).wrapping_mul(*hot_keys) % space;
                    (offset + rng.gen_range(0..*hot_keys)) % space
                } else {
                    rng.gen_range(0..*space)
                }
            }
            KeyDist::MultiTenant {
                tenants,
                cum_weights,
                ..
            } => {
                let u: f64 = rng.gen();
                let i = cum_weights
                    .partition_point(|&c| c < u)
                    .min(tenants.len() - 1);
                let (base, dist) = &tenants[i];
                base + dist.sample_at(rng, step)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    #[test]
    fn uniform_stays_in_range_and_covers_space() {
        let d = KeyDist::uniform(100);
        let mut r = rng(1);
        let mut seen = [false; 100];
        for _ in 0..10_000 {
            let k = d.sample(&mut r);
            assert!(k < 100);
            seen[k as usize] = true;
        }
        assert!(seen.iter().filter(|&&s| s).count() > 95);
    }

    #[test]
    fn zipf_prefers_low_ranks() {
        let d = KeyDist::zipf(1000, 1.0);
        let mut r = rng(2);
        let mut low = 0;
        let n = 20_000;
        for _ in 0..n {
            if d.sample(&mut r) < 10 {
                low += 1;
            }
        }
        // With s=1 over 1000 keys, the top-10 mass is ~39%; uniform would
        // give 1%.
        assert!(low as f64 / n as f64 > 0.25, "top-10 mass only {low}/{n}");
    }

    #[test]
    fn zipf_zero_exponent_is_uniformish() {
        let d = KeyDist::zipf(100, 0.0);
        let mut r = rng(3);
        let mut low = 0;
        let n = 20_000;
        for _ in 0..n {
            if d.sample(&mut r) < 10 {
                low += 1;
            }
        }
        let frac = low as f64 / n as f64;
        assert!((frac - 0.10).abs() < 0.02, "top-10 mass {frac}");
    }

    #[test]
    fn hotspot_honours_probability() {
        let d = KeyDist::hotspot(10_000, 100, 0.9);
        let mut r = rng(4);
        let n = 20_000;
        let mut hot = 0;
        for _ in 0..n {
            if d.sample(&mut r) < 100 {
                hot += 1;
            }
        }
        let frac = hot as f64 / n as f64;
        // 0.9 targeted + ~1% of the uniform remainder.
        assert!((frac - 0.901).abs() < 0.02, "hot fraction {frac}");
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let d = KeyDist::uniform(1 << 16);
        let a: Vec<u64> = {
            let mut r = rng(42);
            (0..100).map(|_| d.sample(&mut r)).collect()
        };
        let b: Vec<u64> = {
            let mut r = rng(42);
            (0..100).map(|_| d.sample(&mut r)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn space_accessor() {
        assert_eq!(KeyDist::uniform(64).space(), 64);
        assert_eq!(KeyDist::zipf(10, 1.0).space(), 10);
        assert_eq!(KeyDist::hotspot(50, 5, 0.5).space(), 50);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_space_rejected() {
        KeyDist::uniform(0);
    }

    #[test]
    #[should_panic(expected = "within the key space")]
    fn oversized_hot_set_rejected() {
        KeyDist::hotspot(10, 11, 0.5);
    }

    #[test]
    fn shifting_hotspot_moves_with_the_step() {
        let d = KeyDist::shifting_hotspot(10_000, 100, 1.0, 5);
        let mut r = rng(6);
        // Steps 0..5 draw from [0, 100); steps 5..10 from [100, 200), etc.
        for _ in 0..500 {
            assert!(d.sample_at(&mut r, 0) < 100);
            let k = d.sample_at(&mut r, 7);
            assert!((100..200).contains(&k), "step 7 drew {k}");
            let k = d.sample_at(&mut r, 12);
            assert!((200..300).contains(&k), "step 12 drew {k}");
        }
        // Step-blind sampling sees the step-0 hot set.
        for _ in 0..100 {
            assert!(d.sample(&mut r) < 100);
        }
    }

    #[test]
    fn shifting_hotspot_wraps_around_the_space() {
        let d = KeyDist::shifting_hotspot(250, 100, 1.0, 1);
        let mut r = rng(7);
        // Step 2: offset 200, hot window wraps [200, 250) ∪ [0, 50).
        for _ in 0..500 {
            let k = d.sample_at(&mut r, 2);
            assert!(!(50..200).contains(&k), "wrapped window drew {k}");
        }
    }

    #[test]
    fn multi_tenant_respects_weights_and_slices() {
        let d = KeyDist::multi_tenant(vec![
            (3.0, KeyDist::uniform(100)),
            (1.0, KeyDist::uniform(100)),
        ]);
        assert_eq!(d.space(), 200);
        let mut r = rng(8);
        let n = 40_000;
        let mut first = 0u64;
        for _ in 0..n {
            let k = d.sample_at(&mut r, 3);
            assert!(k < 200);
            if k < 100 {
                first += 1;
            }
        }
        let frac = first as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.02, "tenant-0 fraction {frac}");
    }

    #[test]
    fn multi_tenant_inner_dists_keep_their_shape() {
        // Tenant 1 is a Zipf: its slice must still prefer its low ranks.
        let d = KeyDist::multi_tenant(vec![
            (1.0, KeyDist::uniform(50)),
            (1.0, KeyDist::zipf(1000, 1.2)),
        ]);
        let mut r = rng(9);
        let n = 20_000;
        let mut tenant1_low = 0u64;
        let mut tenant1_all = 0u64;
        for _ in 0..n {
            let k = d.sample(&mut r);
            if k >= 50 {
                tenant1_all += 1;
                if k < 60 {
                    tenant1_low += 1;
                }
            }
        }
        assert!(tenant1_all > 0);
        let frac = tenant1_low as f64 / tenant1_all as f64;
        assert!(frac > 0.3, "zipf tenant top-10 mass only {frac}");
    }

    #[test]
    #[should_panic(expected = "at least one tenant")]
    fn empty_tenant_mix_rejected() {
        KeyDist::multi_tenant(vec![]);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn non_positive_tenant_weight_rejected() {
        KeyDist::multi_tenant(vec![(0.0, KeyDist::uniform(10))]);
    }
}
