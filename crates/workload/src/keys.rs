//! Key distributions (`rand_coordinates` in the paper's loop).

use rand::rngs::SmallRng;
use rand::Rng;

/// How query keys are drawn from the key space.
#[derive(Debug, Clone)]
pub enum KeyDist {
    /// Uniform over `[0, space)` — the paper's "randomized inputs over 64K
    /// possibilities", explicitly the worst case for reuse.
    Uniform {
        /// Key-space size.
        space: u64,
    },
    /// Zipfian with exponent `s` over `[0, space)`: rank-`i` key has
    /// probability ∝ `1 / i^s`. Models realistic skewed interest (the Haiti
    /// scenario of the introduction, where some map tiles are far hotter).
    Zipf {
        /// Key-space size.
        space: u64,
        /// Skew exponent (`0` degenerates to uniform).
        s: f64,
        /// Precomputed CDF for inverse-transform sampling.
        cdf: Vec<f64>,
    },
    /// A hot set: with probability `hot_prob` draw uniformly from the first
    /// `hot_keys` keys, otherwise uniformly from the whole space.
    Hotspot {
        /// Key-space size.
        space: u64,
        /// Size of the hot set.
        hot_keys: u64,
        /// Probability a query targets the hot set.
        hot_prob: f64,
    },
}

impl KeyDist {
    /// Uniform over `[0, space)`.
    ///
    /// # Panics
    ///
    /// Panics if `space == 0`.
    pub fn uniform(space: u64) -> Self {
        assert!(space > 0, "key space must be non-empty");
        KeyDist::Uniform { space }
    }

    /// Zipfian over `[0, space)` with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `space == 0`, `space > 2^24` (CDF table too large), or `s`
    /// is negative/non-finite.
    pub fn zipf(space: u64, s: f64) -> Self {
        assert!(space > 0, "key space must be non-empty");
        assert!(space <= 1 << 24, "zipf CDF table would be too large");
        assert!(s >= 0.0 && s.is_finite(), "exponent must be non-negative");
        let mut cdf = Vec::with_capacity(space as usize);
        let mut acc = 0.0f64;
        for i in 1..=space {
            acc += 1.0 / (i as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        KeyDist::Zipf { space, s, cdf }
    }

    /// Hotspot distribution.
    ///
    /// # Panics
    ///
    /// Panics on an empty space, `hot_keys` outside `(0, space]`, or
    /// `hot_prob` outside `[0, 1]`.
    pub fn hotspot(space: u64, hot_keys: u64, hot_prob: f64) -> Self {
        assert!(space > 0, "key space must be non-empty");
        assert!(
            hot_keys > 0 && hot_keys <= space,
            "hot set must be within the key space"
        );
        assert!((0.0..=1.0).contains(&hot_prob), "probability out of range");
        KeyDist::Hotspot {
            space,
            hot_keys,
            hot_prob,
        }
    }

    /// The key-space size.
    pub fn space(&self) -> u64 {
        match *self {
            KeyDist::Uniform { space }
            | KeyDist::Zipf { space, .. }
            | KeyDist::Hotspot { space, .. } => space,
        }
    }

    /// Draw one key.
    pub fn sample(&self, rng: &mut SmallRng) -> u64 {
        match self {
            KeyDist::Uniform { space } => rng.gen_range(0..*space),
            KeyDist::Zipf { cdf, .. } => {
                let u: f64 = rng.gen();
                // First rank whose cumulative mass reaches u.
                cdf.partition_point(|&c| c < u) as u64
            }
            KeyDist::Hotspot {
                space,
                hot_keys,
                hot_prob,
            } => {
                if rng.gen::<f64>() < *hot_prob {
                    rng.gen_range(0..*hot_keys)
                } else {
                    rng.gen_range(0..*space)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    #[test]
    fn uniform_stays_in_range_and_covers_space() {
        let d = KeyDist::uniform(100);
        let mut r = rng(1);
        let mut seen = [false; 100];
        for _ in 0..10_000 {
            let k = d.sample(&mut r);
            assert!(k < 100);
            seen[k as usize] = true;
        }
        assert!(seen.iter().filter(|&&s| s).count() > 95);
    }

    #[test]
    fn zipf_prefers_low_ranks() {
        let d = KeyDist::zipf(1000, 1.0);
        let mut r = rng(2);
        let mut low = 0;
        let n = 20_000;
        for _ in 0..n {
            if d.sample(&mut r) < 10 {
                low += 1;
            }
        }
        // With s=1 over 1000 keys, the top-10 mass is ~39%; uniform would
        // give 1%.
        assert!(low as f64 / n as f64 > 0.25, "top-10 mass only {low}/{n}");
    }

    #[test]
    fn zipf_zero_exponent_is_uniformish() {
        let d = KeyDist::zipf(100, 0.0);
        let mut r = rng(3);
        let mut low = 0;
        let n = 20_000;
        for _ in 0..n {
            if d.sample(&mut r) < 10 {
                low += 1;
            }
        }
        let frac = low as f64 / n as f64;
        assert!((frac - 0.10).abs() < 0.02, "top-10 mass {frac}");
    }

    #[test]
    fn hotspot_honours_probability() {
        let d = KeyDist::hotspot(10_000, 100, 0.9);
        let mut r = rng(4);
        let n = 20_000;
        let mut hot = 0;
        for _ in 0..n {
            if d.sample(&mut r) < 100 {
                hot += 1;
            }
        }
        let frac = hot as f64 / n as f64;
        // 0.9 targeted + ~1% of the uniform remainder.
        assert!((frac - 0.901).abs() < 0.02, "hot fraction {frac}");
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let d = KeyDist::uniform(1 << 16);
        let a: Vec<u64> = {
            let mut r = rng(42);
            (0..100).map(|_| d.sample(&mut r)).collect()
        };
        let b: Vec<u64> = {
            let mut r = rng(42);
            (0..100).map(|_| d.sample(&mut r)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn space_accessor() {
        assert_eq!(KeyDist::uniform(64).space(), 64);
        assert_eq!(KeyDist::zipf(10, 1.0).space(), 10);
        assert_eq!(KeyDist::hotspot(50, 5, 0.5).space(), 50);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_space_rejected() {
        KeyDist::uniform(0);
    }

    #[test]
    #[should_panic(expected = "within the key space")]
    fn oversized_hot_set_rejected() {
        KeyDist::hotspot(10, 11, 0.5);
    }
}
