//! The query stream: schedule × distribution → `(time_step, key)` pairs.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::keys::KeyDist;
use crate::schedule::RateSchedule;

/// A deterministic stream of queries following a rate schedule.
///
/// Iteration yields `(time_step, key)` pairs: at each 0-based time step the
/// stream emits `schedule.rate_at(step)` keys drawn from the distribution.
/// The harness detects step boundaries by watching the first element — that
/// is when it calls the cache's `end_time_slice()`.
#[derive(Debug, Clone)]
pub struct QueryStream {
    schedule: RateSchedule,
    dist: KeyDist,
    seed: u64,
}

impl QueryStream {
    /// Build a stream from a schedule, a key distribution and an RNG seed.
    pub fn new(schedule: RateSchedule, dist: KeyDist, seed: u64) -> Self {
        Self {
            schedule,
            dist,
            seed,
        }
    }

    /// The schedule in use.
    pub fn schedule(&self) -> &RateSchedule {
        &self.schedule
    }

    /// The key distribution in use.
    pub fn dist(&self) -> &KeyDist {
        &self.dist
    }

    /// Iterate over the queries of the first `steps` time steps.
    pub fn take_steps(&self, steps: u64) -> QueryIter {
        QueryIter {
            rng: SmallRng::seed_from_u64(self.seed),
            schedule: self.schedule.clone(),
            dist: self.dist.clone(),
            step: 0,
            within: 0,
            steps,
        }
    }

    /// Iterate until approximately `total` queries have been produced
    /// (finishes the step in progress).
    pub fn take_queries(&self, total: u64) -> impl Iterator<Item = (u64, u64)> {
        // Steps needed to cover `total` queries under this schedule.
        let mut acc = 0u64;
        let mut steps = 0u64;
        while acc < total {
            acc += self.schedule.rate_at(steps).max(1);
            steps += 1;
            if steps > 100_000_000 {
                break; // zero-rate schedule guard
            }
        }
        self.take_steps(steps)
    }
}

/// Iterator state for [`QueryStream::take_steps`].
#[derive(Debug)]
pub struct QueryIter {
    rng: SmallRng,
    schedule: RateSchedule,
    dist: KeyDist,
    step: u64,
    within: u64,
    steps: u64,
}

impl Iterator for QueryIter {
    type Item = (u64, u64);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.step >= self.steps {
                return None;
            }
            let rate = self.schedule.rate_at(self.step);
            if self.within < rate {
                self.within += 1;
                return Some((self.step, self.dist.sample(&mut self.rng)));
            }
            self.step += 1;
            self.within = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_rate_queries_per_step() {
        let s = QueryStream::new(RateSchedule::constant(3), KeyDist::uniform(10), 0);
        let q: Vec<(u64, u64)> = s.take_steps(4).collect();
        assert_eq!(q.len(), 12);
        let steps: Vec<u64> = q.iter().map(|(s, _)| *s).collect();
        assert_eq!(steps, vec![0, 0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 3]);
    }

    #[test]
    fn paper_schedule_produces_phase_counts() {
        let s = QueryStream::new(
            RateSchedule::paper_eviction_phases(),
            KeyDist::uniform(32 * 1024),
            1,
        );
        let per_step = |step: u64| s.take_steps(500).filter(move |(s, _)| *s == step).count();
        assert_eq!(per_step(0), 50);
        assert_eq!(per_step(150), 250);
        assert_eq!(per_step(450), 50);
    }

    #[test]
    fn streams_are_reproducible() {
        let s = QueryStream::new(RateSchedule::constant(5), KeyDist::uniform(100), 99);
        let a: Vec<_> = s.take_steps(20).collect();
        let b: Vec<_> = s.take_steps(20).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a: Vec<_> = QueryStream::new(RateSchedule::constant(5), KeyDist::uniform(1000), 1)
            .take_steps(10)
            .collect();
        let b: Vec<_> = QueryStream::new(RateSchedule::constant(5), KeyDist::uniform(1000), 2)
            .take_steps(10)
            .collect();
        assert_ne!(a, b);
    }

    #[test]
    fn take_queries_covers_at_least_the_request() {
        let s = QueryStream::new(RateSchedule::constant(7), KeyDist::uniform(10), 3);
        let n = s.take_queries(100).count() as u64;
        assert!(n >= 100);
        assert!(n < 100 + 7);
    }

    #[test]
    fn keys_stay_in_space() {
        let s = QueryStream::new(
            RateSchedule::paper_eviction_phases(),
            KeyDist::uniform(64),
            5,
        );
        assert!(s.take_steps(50).all(|(_, k)| k < 64));
    }
}
