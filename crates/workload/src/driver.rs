//! The query stream: schedule × distribution → `(time_step, key)` pairs.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::keys::KeyDist;
use crate::schedule::RateSchedule;

/// What one workload event does to the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Op {
    /// Read the key (GET; a miss may populate on the query path).
    Read,
    /// Write the key (PUT — an unconditional overwrite).
    Write,
}

impl Op {
    /// Stable one-character tag used by the trace format.
    pub fn tag(self) -> char {
        match self {
            Op::Read => 'r',
            Op::Write => 'w',
        }
    }

    /// Parse a trace tag.
    pub fn from_tag(c: char) -> Option<Op> {
        match c {
            'r' => Some(Op::Read),
            'w' => Some(Op::Write),
            _ => None,
        }
    }
}

/// A deterministic stream of queries following a rate schedule.
///
/// Iteration yields `(time_step, key)` pairs: at each 0-based time step the
/// stream emits `schedule.rate_at(step)` keys drawn from the distribution.
/// The harness detects step boundaries by watching the first element — that
/// is when it calls the cache's `end_time_slice()`.
///
/// The read/write axis: [`QueryStream::with_write_ratio`] makes a fraction
/// of events writes, surfaced by the `(step, op, key)` iterator behind
/// [`QueryStream::take_steps_ops`]. With the default ratio of zero the op
/// draw is skipped entirely, so `take_steps` streams stay byte-identical
/// with pre-ratio builds.
#[derive(Debug, Clone)]
pub struct QueryStream {
    schedule: RateSchedule,
    dist: KeyDist,
    seed: u64,
    write_ratio: f64,
}

impl QueryStream {
    /// Build a stream from a schedule, a key distribution and an RNG seed.
    pub fn new(schedule: RateSchedule, dist: KeyDist, seed: u64) -> Self {
        Self {
            schedule,
            dist,
            seed,
            write_ratio: 0.0,
        }
    }

    /// Make `ratio` of the stream's events writes (PUTs).
    ///
    /// # Panics
    ///
    /// Panics if `ratio` is outside `[0, 1]`.
    pub fn with_write_ratio(mut self, ratio: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&ratio) && ratio.is_finite(),
            "write ratio out of range"
        );
        self.write_ratio = ratio;
        self
    }

    /// The schedule in use.
    pub fn schedule(&self) -> &RateSchedule {
        &self.schedule
    }

    /// The key distribution in use.
    pub fn dist(&self) -> &KeyDist {
        &self.dist
    }

    /// The configured write fraction.
    pub fn write_ratio(&self) -> f64 {
        self.write_ratio
    }

    /// The RNG seed the stream replays from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Iterate over the queries of the first `steps` time steps as
    /// `(step, key)` pairs (ops dropped; writes and reads look alike).
    pub fn take_steps(&self, steps: u64) -> impl Iterator<Item = (u64, u64)> {
        self.take_steps_ops(steps).map(|(s, _, k)| (s, k))
    }

    /// Iterate over the first `steps` time steps as `(step, op, key)`
    /// triples — the full zoo surface (read/write mix, step-aware
    /// distributions).
    pub fn take_steps_ops(&self, steps: u64) -> OpIter {
        OpIter {
            rng: SmallRng::seed_from_u64(self.seed),
            schedule: self.schedule.clone(),
            dist: self.dist.clone(),
            write_ratio: self.write_ratio,
            step: 0,
            within: 0,
            steps,
        }
    }

    /// Iterate until approximately `total` queries have been produced
    /// (finishes the step in progress).
    pub fn take_queries(&self, total: u64) -> impl Iterator<Item = (u64, u64)> {
        self.take_steps(self.steps_for(total))
    }

    /// Steps needed to cover `total` queries under this schedule.
    pub fn steps_for(&self, total: u64) -> u64 {
        let mut acc = 0u64;
        let mut steps = 0u64;
        while acc < total {
            acc += self.schedule.rate_at(steps).max(1);
            steps += 1;
            if steps > 100_000_000 {
                break; // zero-rate schedule guard
            }
        }
        steps
    }
}

/// Iterator state for [`QueryStream::take_steps_ops`].
#[derive(Debug)]
pub struct OpIter {
    rng: SmallRng,
    schedule: RateSchedule,
    dist: KeyDist,
    write_ratio: f64,
    step: u64,
    within: u64,
    steps: u64,
}

impl Iterator for OpIter {
    type Item = (u64, Op, u64);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.step >= self.steps {
                return None;
            }
            let rate = self.schedule.rate_at(self.step);
            if self.within < rate {
                self.within += 1;
                // The zero-ratio fast path draws no op coin, keeping the
                // byte stream identical to pre-ratio builds per seed.
                let op = if self.write_ratio > 0.0 && self.rng.gen::<f64>() < self.write_ratio {
                    Op::Write
                } else {
                    Op::Read
                };
                let key = self.dist.sample_at(&mut self.rng, self.step);
                return Some((self.step, op, key));
            }
            self.step += 1;
            self.within = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_rate_queries_per_step() {
        let s = QueryStream::new(RateSchedule::constant(3), KeyDist::uniform(10), 0);
        let q: Vec<(u64, u64)> = s.take_steps(4).collect();
        assert_eq!(q.len(), 12);
        let steps: Vec<u64> = q.iter().map(|(s, _)| *s).collect();
        assert_eq!(steps, vec![0, 0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 3]);
    }

    #[test]
    fn paper_schedule_produces_phase_counts() {
        let s = QueryStream::new(
            RateSchedule::paper_eviction_phases(),
            KeyDist::uniform(32 * 1024),
            1,
        );
        let per_step = |step: u64| s.take_steps(500).filter(move |(s, _)| *s == step).count();
        assert_eq!(per_step(0), 50);
        assert_eq!(per_step(150), 250);
        assert_eq!(per_step(450), 50);
    }

    #[test]
    fn streams_are_reproducible() {
        let s = QueryStream::new(RateSchedule::constant(5), KeyDist::uniform(100), 99);
        let a: Vec<_> = s.take_steps(20).collect();
        let b: Vec<_> = s.take_steps(20).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a: Vec<_> = QueryStream::new(RateSchedule::constant(5), KeyDist::uniform(1000), 1)
            .take_steps(10)
            .collect();
        let b: Vec<_> = QueryStream::new(RateSchedule::constant(5), KeyDist::uniform(1000), 2)
            .take_steps(10)
            .collect();
        assert_ne!(a, b);
    }

    #[test]
    fn take_queries_covers_at_least_the_request() {
        let s = QueryStream::new(RateSchedule::constant(7), KeyDist::uniform(10), 3);
        let n = s.take_queries(100).count() as u64;
        assert!(n >= 100);
        assert!(n < 100 + 7);
    }

    #[test]
    fn keys_stay_in_space() {
        let s = QueryStream::new(
            RateSchedule::paper_eviction_phases(),
            KeyDist::uniform(64),
            5,
        );
        assert!(s.take_steps(50).all(|(_, k)| k < 64));
    }

    #[test]
    fn zero_ratio_stream_is_all_reads_and_matches_pairs() {
        let s = QueryStream::new(RateSchedule::constant(4), KeyDist::uniform(64), 11);
        let ops: Vec<_> = s.take_steps_ops(10).collect();
        assert!(ops.iter().all(|(_, op, _)| *op == Op::Read));
        let pairs: Vec<(u64, u64)> = s.take_steps(10).collect();
        let from_ops: Vec<(u64, u64)> = ops.iter().map(|&(s, _, k)| (s, k)).collect();
        assert_eq!(pairs, from_ops);
    }

    #[test]
    fn write_ratio_is_honoured() {
        let s = QueryStream::new(RateSchedule::constant(100), KeyDist::uniform(1 << 10), 13)
            .with_write_ratio(0.3);
        let ops: Vec<_> = s.take_steps_ops(200).collect();
        let writes = ops.iter().filter(|(_, op, _)| *op == Op::Write).count();
        let frac = writes as f64 / ops.len() as f64;
        assert!((frac - 0.3).abs() < 0.02, "write fraction {frac}");
        // Deterministic per seed.
        let again: Vec<_> = s.take_steps_ops(200).collect();
        assert_eq!(ops, again);
    }

    #[test]
    fn shifting_hotspot_flows_through_the_stream() {
        let dist = KeyDist::shifting_hotspot(1 << 16, 64, 1.0, 10);
        let s = QueryStream::new(RateSchedule::constant(20), KeyDist::clone(&dist), 17);
        for (step, key) in s.take_steps(30) {
            let window = step / 10;
            let lo = window * 64;
            assert!(
                key >= lo && key < lo + 64,
                "step {step} drew {key}, expected [{lo}, {})",
                lo + 64
            );
        }
    }

    #[test]
    fn op_tags_roundtrip() {
        for op in [Op::Read, Op::Write] {
            assert_eq!(Op::from_tag(op.tag()), Some(op));
        }
        assert_eq!(Op::from_tag('x'), None);
    }
}
