//! Workload generation: the paper's query-submission loop.
//!
//! The evaluation drives the cache with a scripted loop (paper §IV-A):
//!
//! ```text
//! for time step i ← 1 to … do
//!     R ← current query rate(i)
//!     for j ← 1 to R do
//!         invoke shoreline service(rand_coordinates(i))
//!     end for
//! end for
//! ```
//!
//! This crate provides the three pieces of that loop:
//!
//! * [`schedule`] — `R` as a function of the time step, including the exact
//!   phase schedule of the eviction experiments (50 → 250 → 50 q/step),
//! * [`keys`] — the randomized key draws (`rand_coordinates`): uniform over
//!   a 64 K/32 K space as in the paper, plus Zipfian and hotspot
//!   distributions for sensitivity studies, and
//! * [`driver`] — an iterator yielding `(time_step, key)` pairs — or full
//!   `(time_step, op, key)` triples once a write ratio is set — that a
//!   harness feeds to any cache implementation,
//! * [`trace`] — capture/replay of those events on disk, for byte-identical
//!   cross-version comparisons, and
//! * [`scenario`] — the scenario zoo: named bundles of the above
//!   (shifting hot sets, diurnal waves, flash crowds, multi-tenant mixes)
//!   shared by cloudsim, `loadgen --scenario` and simtest.
//!
//! # Example
//!
//! ```
//! use ecc_workload::driver::QueryStream;
//! use ecc_workload::keys::KeyDist;
//! use ecc_workload::schedule::RateSchedule;
//!
//! // Paper Figure 5 workload: 32 K keys, 50/250/50 q/step phases.
//! let stream = QueryStream::new(
//!     RateSchedule::paper_eviction_phases(),
//!     KeyDist::uniform(32 * 1024),
//!     7, // seed
//! );
//! let queries: Vec<(u64, u64)> = stream.take_steps(100).collect();
//! assert_eq!(queries.len(), 100 * 50); // first phase: R = 50
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod driver;
pub mod keys;
pub mod scenario;
pub mod schedule;
pub mod trace;
