//! Query-rate schedules (`R` per time step).

use serde::{Deserialize, Serialize};

/// One phase of a schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Phase {
    /// A constant rate for a number of steps.
    Flat {
        /// How many time steps this phase lasts.
        steps: u64,
        /// Queries per time step.
        rate: u64,
    },
    /// A linear ramp between two rates over a number of steps (inclusive of
    /// the start rate, approaching the end rate).
    Ramp {
        /// How many time steps this phase lasts.
        steps: u64,
        /// Rate at the first step of the phase.
        from: u64,
        /// Rate approached by the end of the phase.
        to: u64,
    },
}

impl Phase {
    fn steps(&self) -> u64 {
        match *self {
            Phase::Flat { steps, .. } | Phase::Ramp { steps, .. } => steps,
        }
    }

    fn rate_at(&self, offset: u64) -> u64 {
        match *self {
            Phase::Flat { rate, .. } => rate,
            Phase::Ramp { steps, from, to } => {
                if steps <= 1 {
                    return to;
                }
                let t = offset as f64 / (steps - 1) as f64;
                (from as f64 + (to as f64 - from as f64) * t).round() as u64
            }
        }
    }
}

/// A piecewise rate schedule; steps past the last phase repeat the final
/// phase's ending rate.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RateSchedule {
    phases: Vec<Phase>,
}

impl RateSchedule {
    /// A schedule from explicit phases.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty or any phase has zero steps.
    pub fn new(phases: Vec<Phase>) -> Self {
        assert!(!phases.is_empty(), "schedule needs at least one phase");
        assert!(
            phases.iter().all(|p| p.steps() > 0),
            "phases must last at least one step"
        );
        Self { phases }
    }

    /// A constant rate forever.
    pub fn constant(rate: u64) -> Self {
        Self::new(vec![Phase::Flat { steps: 1, rate }])
    }

    /// The eviction-experiment schedule of paper §IV-C:
    /// steps 1–100 at `R = 50`, steps 101–300 at `R = 250`, a ramp back
    /// down over steps 301–400 (the paper leaves this region unspecified;
    /// see DESIGN.md §7), then `R = 50` onward.
    pub fn paper_eviction_phases() -> Self {
        Self::new(vec![
            Phase::Flat {
                steps: 100,
                rate: 50,
            },
            Phase::Flat {
                steps: 200,
                rate: 250,
            },
            Phase::Ramp {
                steps: 100,
                from: 250,
                to: 50,
            },
            Phase::Flat { steps: 1, rate: 50 },
        ])
    }

    /// The Figure 3 schedule: one query per time step.
    pub fn paper_figure3() -> Self {
        Self::constant(1)
    }

    /// Queries per time step at 0-based step `step`.
    pub fn rate_at(&self, step: u64) -> u64 {
        let mut offset = step;
        for phase in &self.phases {
            if offset < phase.steps() {
                return phase.rate_at(offset);
            }
            offset -= phase.steps();
        }
        // Past the end: hold the final rate.
        let last = self.phases.last().expect("non-empty");
        last.rate_at(last.steps() - 1)
    }

    /// Total queries issued over the first `steps` time steps.
    pub fn total_queries(&self, steps: u64) -> u64 {
        (0..steps).map(|s| self.rate_at(s)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_schedule_never_changes() {
        let s = RateSchedule::constant(7);
        assert_eq!(s.rate_at(0), 7);
        assert_eq!(s.rate_at(1_000_000), 7);
        assert_eq!(s.total_queries(10), 70);
    }

    #[test]
    fn paper_phases_match_the_text() {
        let s = RateSchedule::paper_eviction_phases();
        // Steps 1..=100 (0-based 0..100): 50 q/step.
        assert_eq!(s.rate_at(0), 50);
        assert_eq!(s.rate_at(99), 50);
        // Steps 101..=300: 250 q/step.
        assert_eq!(s.rate_at(100), 250);
        assert_eq!(s.rate_at(299), 250);
        // Transition region ramps down.
        assert_eq!(s.rate_at(300), 250);
        assert!(s.rate_at(350) < 250);
        assert!(s.rate_at(350) > 50);
        // From step 400 (0-based 399): back to 50.
        assert_eq!(s.rate_at(399), 50);
        assert_eq!(s.rate_at(10_000), 50);
    }

    #[test]
    fn ramp_is_monotone_and_hits_endpoints() {
        let p = Phase::Ramp {
            steps: 5,
            from: 100,
            to: 20,
        };
        let rates: Vec<u64> = (0..5).map(|o| p.rate_at(o)).collect();
        assert_eq!(rates[0], 100);
        assert_eq!(rates[4], 20);
        assert!(rates.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn one_step_ramp_yields_target() {
        let p = Phase::Ramp {
            steps: 1,
            from: 9,
            to: 3,
        };
        assert_eq!(p.rate_at(0), 3);
    }

    #[test]
    fn total_queries_sums_phases() {
        let s = RateSchedule::new(vec![
            Phase::Flat { steps: 2, rate: 10 },
            Phase::Flat { steps: 3, rate: 1 },
        ]);
        assert_eq!(s.total_queries(5), 23);
        assert_eq!(s.total_queries(7), 25); // trailing rate held at 1
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_schedule_rejected() {
        RateSchedule::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn zero_length_phase_rejected() {
        RateSchedule::new(vec![Phase::Flat { steps: 0, rate: 1 }]);
    }
}
