//! Query-rate schedules (`R` per time step).

use serde::{Deserialize, Serialize};

/// One phase of a schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Phase {
    /// A constant rate for a number of steps.
    Flat {
        /// How many time steps this phase lasts.
        steps: u64,
        /// Queries per time step.
        rate: u64,
    },
    /// A linear ramp between two rates over a number of steps (inclusive of
    /// the start rate, approaching the end rate).
    Ramp {
        /// How many time steps this phase lasts.
        steps: u64,
        /// Rate at the first step of the phase.
        from: u64,
        /// Rate approached by the end of the phase.
        to: u64,
    },
    /// A diurnal sine wave: `base + amplitude·sin(2π·offset/period)`,
    /// clamped at zero. Models time-varying request volume (Carlsson/
    /// Eager, arXiv:1803.03914) — the day/night cycle elasticity policies
    /// must track without churning.
    Diurnal {
        /// How many time steps this phase lasts.
        steps: u64,
        /// Mean rate (the wave's midline).
        base: u64,
        /// Peak deviation from the midline.
        amplitude: u64,
        /// Steps per full day/night cycle.
        period: u64,
    },
}

impl Phase {
    fn steps(&self) -> u64 {
        match *self {
            Phase::Flat { steps, .. }
            | Phase::Ramp { steps, .. }
            | Phase::Diurnal { steps, .. } => steps,
        }
    }

    fn rate_at(&self, offset: u64) -> u64 {
        match *self {
            Phase::Flat { rate, .. } => rate,
            Phase::Ramp { steps, from, to } => {
                if steps <= 1 {
                    return to;
                }
                let t = offset as f64 / (steps - 1) as f64;
                (from as f64 + (to as f64 - from as f64) * t).round() as u64
            }
            Phase::Diurnal {
                base,
                amplitude,
                period,
                ..
            } => {
                let period = period.max(1);
                let t = (offset % period) as f64 / period as f64;
                let wave = base as f64 + amplitude as f64 * (2.0 * std::f64::consts::PI * t).sin();
                wave.round().max(0.0) as u64
            }
        }
    }
}

/// A flash crowd: a multiplicative arrival spike layered over a baseline
/// schedule for `[at, at + len)` steps (the paper's shoreline scenario —
/// a disaster hits and everyone asks for the same map region at once).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Spike {
    /// First step of the spike (0-based).
    pub at: u64,
    /// How many steps the spike lasts.
    pub len: u64,
    /// Rate multiplier while the spike is active (×50 in ROADMAP item 5).
    pub mult: u64,
}

/// A piecewise rate schedule; steps past the last phase repeat the final
/// phase's ending rate. Optional [`Spike`] overlays multiply the phase
/// rate while active (flash crowds).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RateSchedule {
    phases: Vec<Phase>,
    #[serde(default)]
    spikes: Vec<Spike>,
}

impl RateSchedule {
    /// A schedule from explicit phases.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty or any phase has zero steps.
    pub fn new(phases: Vec<Phase>) -> Self {
        assert!(!phases.is_empty(), "schedule needs at least one phase");
        assert!(
            phases.iter().all(|p| p.steps() > 0),
            "phases must last at least one step"
        );
        Self {
            phases,
            spikes: Vec::new(),
        }
    }

    /// A constant rate forever.
    pub fn constant(rate: u64) -> Self {
        Self::new(vec![Phase::Flat { steps: 1, rate }])
    }

    /// A pure diurnal schedule: `base ± amplitude` over a `period`-step
    /// cycle, repeating forever.
    ///
    /// # Panics
    ///
    /// Panics if `period == 0`.
    pub fn diurnal(base: u64, amplitude: u64, period: u64) -> Self {
        assert!(period > 0, "diurnal period must be positive");
        Self::new(vec![Phase::Diurnal {
            steps: period,
            base,
            amplitude,
            period,
        }])
    }

    /// Layer flash-crowd spikes over this schedule: while step ∈
    /// `[spike.at, spike.at + spike.len)`, the rate is multiplied by
    /// `spike.mult`. Overlapping spikes compound.
    ///
    /// # Panics
    ///
    /// Panics if any spike has zero length or a zero multiplier (use
    /// `mult = 1` for a no-op, or drop the spike).
    pub fn with_flash_crowds(mut self, spikes: Vec<Spike>) -> Self {
        assert!(
            spikes.iter().all(|s| s.len > 0 && s.mult > 0),
            "spikes need positive length and multiplier"
        );
        self.spikes = spikes;
        self
    }

    /// The flash-crowd overlays, if any.
    pub fn spikes(&self) -> &[Spike] {
        &self.spikes
    }

    /// The eviction-experiment schedule of paper §IV-C:
    /// steps 1–100 at `R = 50`, steps 101–300 at `R = 250`, a ramp back
    /// down over steps 301–400 (the paper leaves this region unspecified;
    /// see DESIGN.md §7), then `R = 50` onward.
    pub fn paper_eviction_phases() -> Self {
        Self::new(vec![
            Phase::Flat {
                steps: 100,
                rate: 50,
            },
            Phase::Flat {
                steps: 200,
                rate: 250,
            },
            Phase::Ramp {
                steps: 100,
                from: 250,
                to: 50,
            },
            Phase::Flat { steps: 1, rate: 50 },
        ])
    }

    /// The Figure 3 schedule: one query per time step.
    pub fn paper_figure3() -> Self {
        Self::constant(1)
    }

    /// Queries per time step at 0-based step `step`.
    pub fn rate_at(&self, step: u64) -> u64 {
        let base = self.base_rate_at(step);
        let mult: u64 = self
            .spikes
            .iter()
            .filter(|s| step >= s.at && step - s.at < s.len)
            .map(|s| s.mult)
            .product();
        base.saturating_mul(mult)
    }

    /// The phase rate at `step`, before any spike overlay. A diurnal phase
    /// that is also the final phase keeps cycling past the schedule end
    /// (the wave is periodic); other phase kinds hold their final rate.
    fn base_rate_at(&self, step: u64) -> u64 {
        let mut offset = step;
        for phase in &self.phases {
            if offset < phase.steps() {
                return phase.rate_at(offset);
            }
            offset -= phase.steps();
        }
        // Past the end: a trailing diurnal wave keeps oscillating, other
        // phases hold their final rate.
        let last = self.phases.last().expect("non-empty");
        match last {
            Phase::Diurnal { steps, .. } => last.rate_at((steps.saturating_sub(1)) + offset + 1),
            _ => last.rate_at(last.steps() - 1),
        }
    }

    /// Total queries issued over the first `steps` time steps.
    pub fn total_queries(&self, steps: u64) -> u64 {
        (0..steps).map(|s| self.rate_at(s)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_schedule_never_changes() {
        let s = RateSchedule::constant(7);
        assert_eq!(s.rate_at(0), 7);
        assert_eq!(s.rate_at(1_000_000), 7);
        assert_eq!(s.total_queries(10), 70);
    }

    #[test]
    fn paper_phases_match_the_text() {
        let s = RateSchedule::paper_eviction_phases();
        // Steps 1..=100 (0-based 0..100): 50 q/step.
        assert_eq!(s.rate_at(0), 50);
        assert_eq!(s.rate_at(99), 50);
        // Steps 101..=300: 250 q/step.
        assert_eq!(s.rate_at(100), 250);
        assert_eq!(s.rate_at(299), 250);
        // Transition region ramps down.
        assert_eq!(s.rate_at(300), 250);
        assert!(s.rate_at(350) < 250);
        assert!(s.rate_at(350) > 50);
        // From step 400 (0-based 399): back to 50.
        assert_eq!(s.rate_at(399), 50);
        assert_eq!(s.rate_at(10_000), 50);
    }

    #[test]
    fn ramp_is_monotone_and_hits_endpoints() {
        let p = Phase::Ramp {
            steps: 5,
            from: 100,
            to: 20,
        };
        let rates: Vec<u64> = (0..5).map(|o| p.rate_at(o)).collect();
        assert_eq!(rates[0], 100);
        assert_eq!(rates[4], 20);
        assert!(rates.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn one_step_ramp_yields_target() {
        let p = Phase::Ramp {
            steps: 1,
            from: 9,
            to: 3,
        };
        assert_eq!(p.rate_at(0), 3);
    }

    #[test]
    fn total_queries_sums_phases() {
        let s = RateSchedule::new(vec![
            Phase::Flat { steps: 2, rate: 10 },
            Phase::Flat { steps: 3, rate: 1 },
        ]);
        assert_eq!(s.total_queries(5), 23);
        assert_eq!(s.total_queries(7), 25); // trailing rate held at 1
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_schedule_rejected() {
        RateSchedule::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn zero_length_phase_rejected() {
        RateSchedule::new(vec![Phase::Flat { steps: 0, rate: 1 }]);
    }

    #[test]
    fn diurnal_wave_peaks_and_troughs() {
        let s = RateSchedule::diurnal(100, 50, 100);
        // Midline at the cycle start, peak a quarter in, trough at 3/4.
        assert_eq!(s.rate_at(0), 100);
        assert_eq!(s.rate_at(25), 150);
        assert_eq!(s.rate_at(75), 50);
        // The wave keeps cycling past the single phase's end.
        assert_eq!(s.rate_at(125), 150);
        assert_eq!(s.rate_at(1_000_025), 150);
    }

    #[test]
    fn diurnal_never_goes_negative() {
        let s = RateSchedule::diurnal(10, 50, 40);
        for step in 0..200 {
            let _ = s.rate_at(step); // must not panic or wrap
        }
        assert_eq!(s.rate_at(30), 0, "trough clamps at zero");
    }

    #[test]
    fn flash_crowd_multiplies_only_inside_the_spike() {
        let s = RateSchedule::constant(50).with_flash_crowds(vec![Spike {
            at: 10,
            len: 5,
            mult: 50,
        }]);
        assert_eq!(s.rate_at(9), 50);
        assert_eq!(s.rate_at(10), 2500);
        assert_eq!(s.rate_at(14), 2500);
        assert_eq!(s.rate_at(15), 50);
        // total_queries integrates the spike.
        assert_eq!(s.total_queries(20), 50 * 15 + 2500 * 5);
    }

    #[test]
    fn overlapping_spikes_compound() {
        let s = RateSchedule::constant(10).with_flash_crowds(vec![
            Spike {
                at: 0,
                len: 4,
                mult: 2,
            },
            Spike {
                at: 2,
                len: 4,
                mult: 3,
            },
        ]);
        assert_eq!(s.rate_at(0), 20);
        assert_eq!(s.rate_at(2), 60);
        assert_eq!(s.rate_at(4), 30);
        assert_eq!(s.rate_at(6), 10);
    }

    #[test]
    #[should_panic(expected = "positive length")]
    fn zero_length_spike_rejected() {
        RateSchedule::constant(1).with_flash_crowds(vec![Spike {
            at: 0,
            len: 0,
            mult: 2,
        }]);
    }
}
