//! Property-based tests for the spatial linearization stack.

use ecc_spatial::{hilbert, morton};
use ecc_spatial::{Curve, GeoGrid, Linearizer, Scheme, TimeGrid};
use proptest::prelude::*;

proptest! {
    #[test]
    fn morton2_roundtrip(x: u32, y: u32) {
        let code = morton::encode2(x, y);
        prop_assert_eq!(morton::decode2(code), (x, y));
    }

    #[test]
    fn morton3_roundtrip(x in 0u32..(1 << 21), y in 0u32..(1 << 21), z in 0u32..(1 << 21)) {
        let code = morton::encode3(x, y, z);
        prop_assert_eq!(morton::decode3(code), (x, y, z));
    }

    #[test]
    fn morton2_is_injective(a: (u32, u32), b: (u32, u32)) {
        prop_assume!(a != b);
        prop_assert_ne!(morton::encode2(a.0, a.1), morton::encode2(b.0, b.1));
    }

    #[test]
    fn hilbert_roundtrip(order in 1u32..=16, raw_x: u32, raw_y: u32) {
        let mask = (1u32 << order) - 1;
        let (x, y) = (raw_x & mask, raw_y & mask);
        let d = hilbert::xy_to_d(order, x, y);
        prop_assert_eq!(hilbert::d_to_xy(order, d), (x, y));
    }

    #[test]
    fn hilbert_neighbors_are_close(order in 2u32..=10, raw_d: u64) {
        let max = 1u64 << (2 * order);
        let d = raw_d % (max - 1);
        let (x1, y1) = hilbert::d_to_xy(order, d);
        let (x2, y2) = hilbert::d_to_xy(order, d + 1);
        let manhattan = (x1 as i64 - x2 as i64).abs() + (y1 as i64 - y2 as i64).abs();
        prop_assert_eq!(manhattan, 1);
    }

    #[test]
    fn linearizer_key_within_space(
        bits in 2u32..=12,
        tbits in 0u32..=8,
        lat in -90.0f64..90.0,
        lon in -180.0f64..180.0,
        ts: u64,
    ) {
        let time = if tbits == 0 { TimeGrid::disabled() } else { TimeGrid::new(0, 60, tbits) };
        for curve in [Curve::Morton, Curve::Hilbert] {
            for scheme in [Scheme::TimeMajor, Scheme::SpaceMajor] {
                let l = Linearizer::new(GeoGrid::global(bits), time, curve, scheme);
                prop_assert!(l.key(lat, lon, ts) < l.key_space());
            }
        }
    }

    #[test]
    fn linearizer_cell_roundtrip(
        bits in 2u32..=12,
        raw_ix: u32,
        raw_iy: u32,
        raw_slot: u32,
    ) {
        let mask = (1u32 << bits) - 1;
        let (ix, iy) = (raw_ix & mask, raw_iy & mask);
        let slot = raw_slot & 0xFF;
        for curve in [Curve::Morton, Curve::Hilbert] {
            for scheme in [Scheme::TimeMajor, Scheme::SpaceMajor] {
                let l = Linearizer::new(
                    GeoGrid::global(bits),
                    TimeGrid::new(0, 60, 8),
                    curve,
                    scheme,
                );
                let key = l.key_for_cell(ix, iy, slot);
                prop_assert_eq!(l.cell_of(key), (ix, iy, slot));
            }
        }
    }

    #[test]
    fn quantize_center_is_stable(
        bits in 1u32..=16,
        lat in -89.999f64..89.999,
        lon in -179.999f64..179.999,
    ) {
        let g = GeoGrid::global(bits);
        let (ix, iy) = g.cell(lat, lon);
        let (clat, clon) = g.center(ix, iy);
        prop_assert_eq!(g.cell(clat, clon), (ix, iy));
    }

    #[test]
    fn time_slot_is_monotone_within_period(epoch in 0u64..1_000_000, a: u32, b: u32) {
        let t = TimeGrid::new(epoch, 3600, 32);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let s_lo = t.slot(epoch + lo as u64);
        let s_hi = t.slot(epoch + hi as u64);
        prop_assert!(s_lo <= s_hi);
    }
}
