//! The composed spatiotemporal linearizer (the "B²-Tree front end").
//!
//! A [`Linearizer`] turns a `(latitude, longitude, timestamp)` query into a
//! single `u64` key and back. Two layout schemes are offered:
//!
//! * [`Scheme::TimeMajor`] — `key = slot << (2*bits) | curve(x, y)`. Keys
//!   from the same time slot are contiguous; this is the layout described
//!   for B²-Trees, where a time-ordered sequence of spatial curves is
//!   concatenated along the key line.
//! * [`Scheme::SpaceMajor`] — `key = curve(x, y) << tbits | slot`. All
//!   observations of one location cluster together instead.

use serde::{Deserialize, Serialize};

use crate::hilbert;
use crate::morton;
use crate::quantize::{GeoGrid, TimeGrid};

/// Which space-filling curve linearizes the spatial grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Curve {
    /// Z-order curve: cheapest to compute, good locality.
    Morton,
    /// Hilbert curve: slightly costlier, best locality.
    Hilbert,
}

/// How the time slot and the spatial curve index combine into one key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scheme {
    /// Slot index in the high bits (B²-Tree layout).
    TimeMajor,
    /// Curve index in the high bits.
    SpaceMajor,
    /// Fully interleaved 3-D Morton code over `(x, y, slot)`: space *and*
    /// time locality in one curve. Requires the Morton curve and equal
    /// spatial/temporal bit widths (each ≤ 21); queries near in both space
    /// and time get nearby keys, which clusters them onto the same cache
    /// node arcs.
    Interleaved,
}

/// Converts spatiotemporal queries to one-dimensional cache keys.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Linearizer {
    geo: GeoGrid,
    time: TimeGrid,
    curve: Curve,
    scheme: Scheme,
}

impl Linearizer {
    /// Build a linearizer from a spatial grid, a time grid, a curve and a
    /// combination scheme.
    ///
    /// # Panics
    ///
    /// Panics if the combined key would exceed 64 bits.
    pub fn new(geo: GeoGrid, time: TimeGrid, curve: Curve, scheme: Scheme) -> Self {
        let total = 2 * geo.bits + time.bits;
        assert!(total <= 64, "key would need {total} bits (> 64)");
        if scheme == Scheme::Interleaved {
            assert_eq!(
                curve,
                Curve::Morton,
                "interleaved scheme is defined on the Morton curve"
            );
            assert_eq!(
                geo.bits, time.bits,
                "interleaved scheme needs equal spatial and temporal widths"
            );
            assert!(geo.bits <= 21, "3-D Morton supports at most 21 bits/axis");
        }
        Self {
            geo,
            time,
            curve,
            scheme,
        }
    }

    /// The total number of distinct keys this linearizer can produce.
    pub fn key_space(&self) -> u64 {
        let bits = 2 * self.geo.bits + self.time.bits;
        if bits >= 64 {
            u64::MAX
        } else {
            1u64 << bits
        }
    }

    /// The spatial grid in use.
    pub fn geo(&self) -> &GeoGrid {
        &self.geo
    }

    /// The time grid in use.
    pub fn time(&self) -> &TimeGrid {
        &self.time
    }

    /// Linearize a query to its cache key.
    pub fn key(&self, lat: f64, lon: f64, timestamp: u64) -> u64 {
        let (ix, iy) = self.geo.cell(lat, lon);
        self.key_for_cell(ix, iy, self.time.slot(timestamp))
    }

    /// Linearize an already-quantized cell and slot.
    pub fn key_for_cell(&self, ix: u32, iy: u32, slot: u32) -> u64 {
        if self.scheme == Scheme::Interleaved {
            return morton::encode3(ix, iy, slot);
        }
        let spatial = self.curve_index(ix, iy);
        match self.scheme {
            Scheme::TimeMajor => ((slot as u64) << (2 * self.geo.bits)) | spatial,
            Scheme::SpaceMajor => (spatial << self.time.bits) | slot as u64,
            Scheme::Interleaved => unreachable!("handled above"),
        }
    }

    /// Invert a key to its grid cell and slot.
    pub fn cell_of(&self, key: u64) -> (u32, u32, u32) {
        if self.scheme == Scheme::Interleaved {
            return morton::decode3(key);
        }
        let (spatial, slot) = match self.scheme {
            Scheme::TimeMajor => {
                let mask = (1u64 << (2 * self.geo.bits)) - 1;
                (key & mask, (key >> (2 * self.geo.bits)) as u32)
            }
            Scheme::SpaceMajor => {
                let mask = if self.time.bits == 0 {
                    0
                } else {
                    (1u64 << self.time.bits) - 1
                };
                (key >> self.time.bits, (key & mask) as u32)
            }
            Scheme::Interleaved => unreachable!("handled above"),
        };
        let (ix, iy) = match self.curve {
            Curve::Morton => morton::decode2(spatial),
            Curve::Hilbert => hilbert::d_to_xy(self.geo.bits, spatial),
        };
        (ix, iy, slot)
    }

    /// Invert a key to the geographic center of its cell and the start of
    /// its time slot.
    pub fn cell_center(&self, key: u64) -> (f64, f64, u64) {
        let (ix, iy, slot) = self.cell_of(key);
        let (lat, lon) = self.geo.center(ix, iy);
        (lat, lon, self.time.slot_start(slot))
    }

    #[inline]
    fn curve_index(&self, ix: u32, iy: u32) -> u64 {
        match self.curve {
            Curve::Morton => {
                // Mask to the grid's bit width so the code stays compact.
                let mask = self.geo.side() - 1;
                morton::encode2(ix & mask, iy & mask)
            }
            Curve::Hilbert => hilbert::xy_to_d(self.geo.bits, ix, iy),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lin(curve: Curve, scheme: Scheme) -> Linearizer {
        Linearizer::new(GeoGrid::global(8), TimeGrid::new(0, 3600, 8), curve, scheme)
    }

    #[test]
    fn key_space_counts_bits() {
        assert_eq!(lin(Curve::Morton, Scheme::TimeMajor).key_space(), 1 << 24);
        let spatial_only = Linearizer::new(
            GeoGrid::global(8),
            TimeGrid::disabled(),
            Curve::Morton,
            Scheme::TimeMajor,
        );
        assert_eq!(spatial_only.key_space(), 1 << 16);
    }

    #[test]
    fn keys_roundtrip_to_cells_all_curves_and_schemes() {
        for curve in [Curve::Morton, Curve::Hilbert] {
            for scheme in [Scheme::TimeMajor, Scheme::SpaceMajor] {
                let l = lin(curve, scheme);
                for &(ix, iy, slot) in &[(0u32, 0u32, 0u32), (255, 255, 255), (17, 200, 99)] {
                    let key = l.key_for_cell(ix, iy, slot);
                    assert_eq!(l.cell_of(key), (ix, iy, slot), "{curve:?}/{scheme:?}");
                }
            }
        }
    }

    #[test]
    fn time_major_groups_by_slot() {
        let l = lin(Curve::Morton, Scheme::TimeMajor);
        let early = l.key_for_cell(255, 255, 0);
        let late = l.key_for_cell(0, 0, 1);
        assert!(early < late, "all slot-0 keys precede slot-1 keys");
    }

    #[test]
    fn space_major_groups_by_location() {
        let l = lin(Curve::Morton, Scheme::SpaceMajor);
        let a0 = l.key_for_cell(3, 7, 0);
        let a255 = l.key_for_cell(3, 7, 255);
        let b0 = l.key_for_cell(3, 8, 0);
        assert!(a0 < a255, "slots of one cell are ordered");
        assert!(a255 < b0, "slots of one cell stay together");
        assert_eq!(a255 - a0, 255);
    }

    #[test]
    fn keys_stay_within_key_space() {
        let l = lin(Curve::Hilbert, Scheme::TimeMajor);
        let k = l.key(90.0, 180.0, u64::MAX);
        assert!(k < l.key_space());
    }

    #[test]
    fn nearby_points_share_prefix_behaviour() {
        // Two points in the same cell must produce the same key.
        let l = lin(Curve::Morton, Scheme::TimeMajor);
        let k1 = l.key(10.0001, 20.0001, 500);
        let k2 = l.key(10.0002, 20.0002, 500);
        assert_eq!(k1, k2);
    }

    #[test]
    fn interleaved_scheme_roundtrips() {
        let l = Linearizer::new(
            GeoGrid::global(8),
            TimeGrid::new(0, 3600, 8),
            Curve::Morton,
            Scheme::Interleaved,
        );
        for &(ix, iy, slot) in &[(0u32, 0u32, 0u32), (255, 255, 255), (17, 200, 99)] {
            let key = l.key_for_cell(ix, iy, slot);
            assert!(key < l.key_space());
            assert_eq!(l.cell_of(key), (ix, iy, slot));
        }
    }

    #[test]
    fn interleaved_clusters_space_and_time() {
        let l = Linearizer::new(
            GeoGrid::global(8),
            TimeGrid::new(0, 3600, 8),
            Curve::Morton,
            Scheme::Interleaved,
        );
        // A neighbour one cell away in the same time slot is closer on the
        // key line than the far side of the map.
        let here = l.key_for_cell(100, 100, 7);
        let neighbour = l.key_for_cell(101, 100, 7);
        let far = l.key_for_cell(200, 30, 7);
        assert!(here.abs_diff(neighbour) < here.abs_diff(far));
        // ...and the same cell one slot later is also nearby.
        let later = l.key_for_cell(100, 100, 8);
        assert!(here.abs_diff(later) < here.abs_diff(far));
    }

    #[test]
    #[should_panic(expected = "equal spatial and temporal widths")]
    fn interleaved_needs_matching_widths() {
        Linearizer::new(
            GeoGrid::global(8),
            TimeGrid::new(0, 3600, 4),
            Curve::Morton,
            Scheme::Interleaved,
        );
    }

    #[test]
    #[should_panic(expected = "Morton curve")]
    fn interleaved_rejects_hilbert() {
        Linearizer::new(
            GeoGrid::global(8),
            TimeGrid::new(0, 3600, 8),
            Curve::Hilbert,
            Scheme::Interleaved,
        );
    }

    #[test]
    #[should_panic(expected = "> 64")]
    fn oversized_key_panics() {
        Linearizer::new(
            GeoGrid::global(31),
            TimeGrid::new(0, 60, 32),
            Curve::Morton,
            Scheme::TimeMajor,
        );
    }
}
