//! Spatiotemporal key linearization for the elastic cloud cache.
//!
//! The paper indexes cached service results with *B²-Trees* (reference \[26\] in the
//! paper): ordinary B+-Trees whose one-dimensional keys are produced by
//! linearizing the query's location and time through a **space-filling
//! curve**. This crate provides that front end:
//!
//! * [`morton`] — Z-order (Morton) curves in 2 and 3 dimensions,
//! * [`hilbert`] — Hilbert curves in 2 dimensions (better locality),
//! * [`quantize`] — mapping of geographic coordinates and timestamps onto
//!   fixed-width integer grids,
//! * [`linear`] — the composed [`linear::Linearizer`] that turns a
//!   `(lat, lon, time)` query into a single `u64` cache key, exactly the
//!   64 K / 32 K "linearized coordinates and date" key spaces used in the
//!   paper's evaluation.
//!
//! # Example
//!
//! ```
//! use ecc_spatial::linear::{Linearizer, Curve, Scheme};
//! use ecc_spatial::quantize::{GeoGrid, TimeGrid};
//!
//! // 8 bits per spatial axis and no time component: a 64 Ki key space,
//! // matching the paper's Figure 3 workload.
//! let lin = Linearizer::new(
//!     GeoGrid::global(8),
//!     TimeGrid::disabled(),
//!     Curve::Morton,
//!     Scheme::TimeMajor,
//! );
//! let key = lin.key(45.52, -122.67, 0);
//! assert!(key < 1 << 16);
//! let (lat, lon, _t) = lin.cell_center(key);
//! assert!((lat - 45.52).abs() < 180.0 / 256.0);
//! assert!((lon + 122.67).abs() < 360.0 / 256.0);
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod hilbert;
pub mod linear;
pub mod morton;
pub mod quantize;

pub use linear::{Curve, Linearizer, Scheme};
pub use quantize::{GeoGrid, TimeGrid};
