//! Z-order (Morton) space-filling curves.
//!
//! A Morton code interleaves the bits of the coordinate components so that
//! points close in space tend to be close on the resulting one-dimensional
//! line. Encoding and decoding are pure bit permutations, implemented with
//! the classic parallel-prefix "bit spreading" tricks, so both directions
//! are O(1) with small constants.

/// Spread the low 32 bits of `x` so that each input bit lands in every
/// second output bit position (`abcd` → `0a0b0c0d`).
#[inline]
pub fn spread2(x: u32) -> u64 {
    let mut x = x as u64;
    x = (x | (x << 16)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x << 8)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x << 2)) & 0x3333_3333_3333_3333;
    x = (x | (x << 1)) & 0x5555_5555_5555_5555;
    x
}

/// Inverse of [`spread2`]: collect every second bit back into a compact u32.
#[inline]
pub fn compact2(x: u64) -> u32 {
    let mut x = x & 0x5555_5555_5555_5555;
    x = (x | (x >> 1)) & 0x3333_3333_3333_3333;
    x = (x | (x >> 2)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x >> 4)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x >> 8)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x >> 16)) & 0x0000_0000_FFFF_FFFF;
    x as u32
}

/// Spread the low 21 bits of `x` so each input bit lands in every third
/// output bit position (used by the 3-D encoding).
#[inline]
pub fn spread3(x: u32) -> u64 {
    let mut x = (x as u64) & 0x1F_FFFF; // 21 bits
    x = (x | (x << 32)) & 0x001F_0000_0000_FFFF;
    x = (x | (x << 16)) & 0x001F_0000_FF00_00FF;
    x = (x | (x << 8)) & 0x100F_00F0_0F00_F00F;
    x = (x | (x << 4)) & 0x10C3_0C30_C30C_30C3;
    x = (x | (x << 2)) & 0x1249_2492_4924_9249;
    x
}

/// Inverse of [`spread3`].
#[inline]
pub fn compact3(x: u64) -> u32 {
    let mut x = x & 0x1249_2492_4924_9249;
    x = (x | (x >> 2)) & 0x10C3_0C30_C30C_30C3;
    x = (x | (x >> 4)) & 0x100F_00F0_0F00_F00F;
    x = (x | (x >> 8)) & 0x001F_0000_FF00_00FF;
    x = (x | (x >> 16)) & 0x001F_0000_0000_FFFF;
    x = (x | (x >> 32)) & 0x0000_0000_001F_FFFF;
    x as u32
}

/// Morton-encode a 2-D point. Accepts full 32-bit coordinates and yields a
/// 64-bit code with `x` in the even bit positions and `y` in the odd ones.
#[inline]
pub fn encode2(x: u32, y: u32) -> u64 {
    spread2(x) | (spread2(y) << 1)
}

/// Decode a 2-D Morton code back to its `(x, y)` coordinates.
#[inline]
pub fn decode2(code: u64) -> (u32, u32) {
    (compact2(code), compact2(code >> 1))
}

/// Morton-encode a 3-D point. Each coordinate contributes its low 21 bits,
/// for a 63-bit code.
#[inline]
pub fn encode3(x: u32, y: u32, z: u32) -> u64 {
    spread3(x) | (spread3(y) << 1) | (spread3(z) << 2)
}

/// Decode a 3-D Morton code back to its `(x, y, z)` coordinates
/// (21 bits each).
#[inline]
pub fn decode3(code: u64) -> (u32, u32, u32) {
    (compact3(code), compact3(code >> 1), compact3(code >> 2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode2_known_values() {
        // Interleaving 0b11, 0b00 -> 0b0101; 0b00, 0b11 -> 0b1010.
        assert_eq!(encode2(0b11, 0b00), 0b0101);
        assert_eq!(encode2(0b00, 0b11), 0b1010);
        assert_eq!(encode2(0, 0), 0);
        assert_eq!(encode2(1, 1), 0b11);
        assert_eq!(encode2(u32::MAX, u32::MAX), u64::MAX);
    }

    #[test]
    fn encode2_is_monotone_along_axes_within_quadrant() {
        // Within one "row" of 2 cells the codes are ordered.
        assert!(encode2(0, 0) < encode2(1, 0));
        assert!(encode2(1, 0) < encode2(0, 1));
        assert!(encode2(0, 1) < encode2(1, 1));
    }

    #[test]
    fn decode2_roundtrip_exhaustive_small() {
        for x in 0..64u32 {
            for y in 0..64u32 {
                assert_eq!(decode2(encode2(x, y)), (x, y));
            }
        }
    }

    #[test]
    fn decode2_roundtrip_extremes() {
        for &v in &[0u32, 1, 2, u32::MAX, u32::MAX - 1, 0x8000_0000] {
            assert_eq!(decode2(encode2(v, 0)), (v, 0));
            assert_eq!(decode2(encode2(0, v)), (0, v));
            assert_eq!(decode2(encode2(v, v)), (v, v));
        }
    }

    #[test]
    fn encode3_known_values() {
        assert_eq!(encode3(1, 0, 0), 0b001);
        assert_eq!(encode3(0, 1, 0), 0b010);
        assert_eq!(encode3(0, 0, 1), 0b100);
        assert_eq!(encode3(0b11, 0, 0), 0b001001);
    }

    #[test]
    fn decode3_roundtrip_small() {
        for x in 0..16u32 {
            for y in 0..16u32 {
                for z in 0..16u32 {
                    assert_eq!(decode3(encode3(x, y, z)), (x, y, z));
                }
            }
        }
    }

    #[test]
    fn encode3_masks_to_21_bits() {
        // Bits above the 21st of each component must not leak into the code.
        let full = encode3(0x1F_FFFF, 0x1F_FFFF, 0x1F_FFFF);
        let over = encode3(u32::MAX, u32::MAX, u32::MAX);
        assert_eq!(full, over);
        assert_eq!(decode3(over), (0x1F_FFFF, 0x1F_FFFF, 0x1F_FFFF));
    }

    #[test]
    fn spread_compact_are_inverses() {
        for &v in &[0u32, 1, 0xFFFF, 0xDEAD_BEEF, u32::MAX] {
            assert_eq!(compact2(spread2(v)), v);
            assert_eq!(compact3(spread3(v & 0x1F_FFFF)), v & 0x1F_FFFF);
        }
    }

    #[test]
    fn codes_are_unique_in_quadrant() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for x in 0..32u32 {
            for y in 0..32u32 {
                assert!(seen.insert(encode2(x, y)), "duplicate code at ({x},{y})");
            }
        }
        assert_eq!(seen.len(), 1024);
    }
}
