//! Quantization of geographic coordinates and timestamps onto integer grids.
//!
//! The shoreline-extraction workload identifies a query by `(L, T)` — a
//! location and a time of interest. Before linearization these continuous
//! inputs are snapped to a regular grid: `bits` bits per spatial axis and a
//! fixed-width slot index for time. The grid is what bounds the paper's key
//! space ("64K possibilities": 8 bits per axis, no time, or any equivalent
//! split).

use serde::{Deserialize, Serialize};

/// A rectangular geographic region quantized to `2^bits x 2^bits` cells.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoGrid {
    /// Minimum latitude (degrees, inclusive).
    pub lat_min: f64,
    /// Maximum latitude (degrees, exclusive for cell purposes).
    pub lat_max: f64,
    /// Minimum longitude (degrees, inclusive).
    pub lon_min: f64,
    /// Maximum longitude (degrees, exclusive for cell purposes).
    pub lon_max: f64,
    /// Bits per spatial axis; the grid has `2^bits` cells per side.
    pub bits: u32,
}

impl GeoGrid {
    /// A grid covering the whole globe with `bits` bits per axis.
    pub fn global(bits: u32) -> Self {
        Self::new(-90.0, 90.0, -180.0, 180.0, bits)
    }

    /// A grid over an arbitrary bounding box.
    ///
    /// # Panics
    ///
    /// Panics if the box is empty or `bits` is outside `1..=31`.
    pub fn new(lat_min: f64, lat_max: f64, lon_min: f64, lon_max: f64, bits: u32) -> Self {
        assert!(lat_min < lat_max, "empty latitude range");
        assert!(lon_min < lon_max, "empty longitude range");
        assert!((1..=31).contains(&bits), "bits must be in 1..=31");
        Self {
            lat_min,
            lat_max,
            lon_min,
            lon_max,
            bits,
        }
    }

    /// Cells per side (`2^bits`).
    #[inline]
    pub fn side(&self) -> u32 {
        1 << self.bits
    }

    /// Total number of cells (`4^bits`).
    #[inline]
    pub fn cells(&self) -> u64 {
        1u64 << (2 * self.bits)
    }

    /// Quantize a coordinate pair to cell indices `(ix, iy)`. Out-of-range
    /// inputs are clamped to the boundary cells, matching how a service
    /// front end would treat slightly out-of-box queries.
    pub fn cell(&self, lat: f64, lon: f64) -> (u32, u32) {
        let side = self.side() as f64;
        let fx = ((lon - self.lon_min) / (self.lon_max - self.lon_min) * side).floor();
        let fy = ((lat - self.lat_min) / (self.lat_max - self.lat_min) * side).floor();
        let clamp = |f: f64| -> u32 {
            if f.is_nan() || f < 0.0 {
                0
            } else if f >= side {
                self.side() - 1
            } else {
                f as u32
            }
        };
        (clamp(fx), clamp(fy))
    }

    /// Geographic center of the cell `(ix, iy)`.
    pub fn center(&self, ix: u32, iy: u32) -> (f64, f64) {
        let side = self.side() as f64;
        let lon = self.lon_min + (ix as f64 + 0.5) / side * (self.lon_max - self.lon_min);
        let lat = self.lat_min + (iy as f64 + 0.5) / side * (self.lat_max - self.lat_min);
        (lat, lon)
    }
}

/// Quantization of timestamps into fixed-length slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimeGrid {
    /// Epoch (seconds) at which slot 0 begins.
    pub epoch: u64,
    /// Slot length in seconds; `0` disables the time dimension entirely.
    pub slot_secs: u64,
    /// Bits reserved for the slot index; slots wrap modulo `2^bits`.
    pub bits: u32,
}

impl TimeGrid {
    /// A time grid with the given epoch, slot length and index width.
    ///
    /// # Panics
    ///
    /// Panics if `slot_secs == 0` (use [`TimeGrid::disabled`]) or
    /// `bits > 32`.
    pub fn new(epoch: u64, slot_secs: u64, bits: u32) -> Self {
        assert!(slot_secs > 0, "use TimeGrid::disabled() for no time axis");
        assert!((1..=32).contains(&bits), "bits must be in 1..=32");
        Self {
            epoch,
            slot_secs,
            bits,
        }
    }

    /// A degenerate grid that contributes zero bits to the key (purely
    /// spatial workloads, e.g. the paper's 64 K key space).
    pub fn disabled() -> Self {
        Self {
            epoch: 0,
            slot_secs: 0,
            bits: 0,
        }
    }

    /// Whether the time axis participates in keys.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.slot_secs > 0 && self.bits > 0
    }

    /// Slot index for `timestamp` (seconds). Times before the epoch land in
    /// slot 0; the index wraps modulo `2^bits`.
    pub fn slot(&self, timestamp: u64) -> u32 {
        if !self.is_enabled() {
            return 0;
        }
        let rel = timestamp.saturating_sub(self.epoch) / self.slot_secs;
        (rel & ((1u64 << self.bits) - 1)) as u32
    }

    /// Start timestamp of a slot (seconds).
    pub fn slot_start(&self, slot: u32) -> u64 {
        if !self.is_enabled() {
            return self.epoch;
        }
        self.epoch + slot as u64 * self.slot_secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_grid_corners() {
        let g = GeoGrid::global(8);
        assert_eq!(g.cell(-90.0, -180.0), (0, 0));
        assert_eq!(g.cell(89.999, 179.999), (255, 255));
        assert_eq!(g.cells(), 65536);
    }

    #[test]
    fn out_of_range_inputs_clamp() {
        let g = GeoGrid::global(4);
        assert_eq!(g.cell(-1000.0, -1000.0), (0, 0));
        assert_eq!(g.cell(1000.0, 1000.0), (15, 15));
        assert_eq!(g.cell(f64::NAN, 0.0).1, 0);
    }

    #[test]
    fn center_roundtrips_through_cell() {
        let g = GeoGrid::new(40.0, 50.0, -130.0, -110.0, 10);
        for &(lat, lon) in &[(45.5, -122.6), (40.0, -130.0), (49.99, -110.01)] {
            let (ix, iy) = g.cell(lat, lon);
            let (clat, clon) = g.center(ix, iy);
            assert_eq!(g.cell(clat, clon), (ix, iy));
        }
    }

    #[test]
    fn cell_width_bounds_quantization_error() {
        let g = GeoGrid::global(8);
        let (ix, iy) = g.cell(12.34, 56.78);
        let (clat, clon) = g.center(ix, iy);
        assert!((clat - 12.34).abs() <= 180.0 / 256.0);
        assert!((clon - 56.78).abs() <= 360.0 / 256.0);
    }

    #[test]
    fn time_slots_quantize_and_wrap() {
        let t = TimeGrid::new(1000, 3600, 4);
        assert_eq!(t.slot(999), 0); // pre-epoch clamps
        assert_eq!(t.slot(1000), 0);
        assert_eq!(t.slot(1000 + 3599), 0);
        assert_eq!(t.slot(1000 + 3600), 1);
        assert_eq!(t.slot(1000 + 16 * 3600), 0); // wraps at 2^4
        assert_eq!(t.slot_start(3), 1000 + 3 * 3600);
    }

    #[test]
    fn disabled_time_grid_contributes_nothing() {
        let t = TimeGrid::disabled();
        assert!(!t.is_enabled());
        assert_eq!(t.slot(u64::MAX), 0);
    }

    #[test]
    #[should_panic(expected = "empty latitude range")]
    fn empty_box_panics() {
        GeoGrid::new(10.0, 10.0, 0.0, 1.0, 4);
    }
}
