//! 2-D Hilbert curve encoding/decoding.
//!
//! The Hilbert curve visits every cell of a `2^order x 2^order` grid while
//! only ever moving between edge-adjacent cells, which gives it strictly
//! better locality preservation than the Z-order curve: consecutive keys are
//! always spatial neighbours. The elastic cache can use either curve; the
//! Hilbert variant is the drop-in upgrade the B²-Tree paper suggests for
//! range-heavy workloads.
//!
//! The implementation is the classic iterative rotate-and-flip algorithm
//! (Hamilton's compact form): `O(order)` per conversion with no tables.

/// Convert grid coordinates `(x, y)` to the Hilbert curve index for a curve
/// of the given `order` (grid side `2^order`, `order <= 31`).
///
/// # Panics
///
/// Panics if `x` or `y` has bits set at or above `order`.
pub fn xy_to_d(order: u32, mut x: u32, mut y: u32) -> u64 {
    assert!((1..=31).contains(&order), "order must be in 1..=31");
    let side = 1u32 << order;
    assert!(x < side && y < side, "coordinates out of range for order");
    let mut rx: u32;
    let mut ry: u32;
    let mut d: u64 = 0;
    let mut s = side >> 1;
    while s > 0 {
        rx = if (x & s) > 0 { 1 } else { 0 };
        ry = if (y & s) > 0 { 1 } else { 0 };
        d += (s as u64) * (s as u64) * ((3 * rx) ^ ry) as u64;
        rotate(s, &mut x, &mut y, rx, ry);
        s >>= 1;
    }
    d
}

/// Convert a Hilbert index `d` back to grid coordinates for a curve of the
/// given `order`.
///
/// # Panics
///
/// Panics if `d >= 4^order`.
pub fn d_to_xy(order: u32, d: u64) -> (u32, u32) {
    assert!((1..=31).contains(&order), "order must be in 1..=31");
    let side = 1u32 << order;
    assert!(
        d < (1u64 << (2 * order)),
        "index out of range for curve order"
    );
    let (mut x, mut y) = (0u32, 0u32);
    let mut t = d;
    let mut s = 1u32;
    while s < side {
        let rx = 1 & (t / 2) as u32;
        let ry = 1 & ((t as u32) ^ rx);
        rotate(s, &mut x, &mut y, rx, ry);
        x += s * rx;
        y += s * ry;
        t /= 4;
        s <<= 1;
    }
    (x, y)
}

/// Rotate/flip a quadrant appropriately (the core Hilbert state transition).
#[inline]
fn rotate(n: u32, x: &mut u32, y: &mut u32, rx: u32, ry: u32) {
    if ry == 0 {
        if rx == 1 {
            *x = n.wrapping_sub(1).wrapping_sub(*x);
            *y = n.wrapping_sub(1).wrapping_sub(*y);
        }
        std::mem::swap(x, y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order1_matches_hand_computed_curve() {
        // Order-1 Hilbert curve visits (0,0) (0,1) (1,1) (1,0).
        assert_eq!(xy_to_d(1, 0, 0), 0);
        assert_eq!(xy_to_d(1, 0, 1), 1);
        assert_eq!(xy_to_d(1, 1, 1), 2);
        assert_eq!(xy_to_d(1, 1, 0), 3);
    }

    #[test]
    fn roundtrip_order4_exhaustive() {
        for x in 0..16u32 {
            for y in 0..16u32 {
                let d = xy_to_d(4, x, y);
                assert_eq!(d_to_xy(4, d), (x, y));
            }
        }
    }

    #[test]
    fn curve_is_a_bijection_order5() {
        let order = 5;
        let n = 1u64 << (2 * order);
        let mut seen = vec![false; n as usize];
        for d in 0..n {
            let (x, y) = d_to_xy(order, d);
            let idx = (y as u64 * (1 << order) + x as u64) as usize;
            assert!(!seen[idx], "cell visited twice");
            seen[idx] = true;
        }
        assert!(seen.iter().all(|&v| v));
    }

    #[test]
    fn consecutive_indices_are_adjacent_cells() {
        let order = 6;
        let mut prev = d_to_xy(order, 0);
        for d in 1..(1u64 << (2 * order)) {
            let cur = d_to_xy(order, d);
            let dx = (cur.0 as i64 - prev.0 as i64).abs();
            let dy = (cur.1 as i64 - prev.1 as i64).abs();
            assert_eq!(dx + dy, 1, "step {d} moved by ({dx},{dy})");
            prev = cur;
        }
    }

    #[test]
    fn large_order_roundtrip_spot_checks() {
        let order = 31;
        for &(x, y) in &[
            (0u32, 0u32),
            (1, 0),
            (0x7FFF_FFFF, 0x7FFF_FFFF),
            (12345, 678910),
            (0x4000_0000, 0x3FFF_FFFF),
        ] {
            let d = xy_to_d(order, x, y);
            assert_eq!(d_to_xy(order, d), (x, y));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn coordinates_out_of_range_panic() {
        xy_to_d(3, 8, 0);
    }

    #[test]
    #[should_panic(expected = "index out of range")]
    fn index_out_of_range_panics() {
        d_to_xy(2, 16);
    }
}
