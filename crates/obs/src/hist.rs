//! Log-bucketed latency histograms.
//!
//! Bucket `i` counts values whose bit length is `i`, i.e. bucket 0 holds
//! the value 0 and bucket `i ≥ 1` holds `[2^(i-1), 2^i)`. 65 buckets cover
//! the whole `u64` range, every `record` is O(1), and two histograms over
//! disjoint samples merge by adding buckets — which is what lets the
//! coordinator fold per-node dumps into one cluster view. Quantiles are
//! read as the upper bound of the bucket where the cumulative count
//! crosses the target rank (a ≤ 2× overestimate, never an underestimate).

/// Number of power-of-two buckets (bit lengths 0..=64).
pub const BUCKET_COUNT: usize = 65;

/// A mergeable power-of-two-bucketed histogram with exact count/sum/min/max.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; BUCKET_COUNT],
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index of `v`: its bit length.
fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i`.
fn bucket_upper(i: usize) -> u64 {
    match i {
        0 => 0,
        64.. => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; BUCKET_COUNT],
        }
    }

    /// Record one value.
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[bucket_of(v)] += 1;
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value, `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded value, `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Raw bucket counts (index = bit length of the value).
    pub fn buckets(&self) -> &[u64; BUCKET_COUNT] {
        &self.buckets
    }

    /// Inclusive upper bound of bucket `i` (for exposition rendering).
    pub fn upper_bound(i: usize) -> u64 {
        bucket_upper(i)
    }

    /// Fold `other` into `self` (bucket-wise addition).
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as the upper bound of the bucket
    /// where the cumulative count reaches rank `ceil(q·count)`; the exact
    /// max for the top bucket. 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Never report a bound above the actually observed max.
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Median (p50).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Append the wire form: count, sum, min, max, bucket count, buckets
    /// (all little-endian `u64` except the `u8` bucket count).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.count.to_le_bytes());
        out.extend_from_slice(&self.sum.to_le_bytes());
        out.extend_from_slice(&self.min.to_le_bytes());
        out.extend_from_slice(&self.max.to_le_bytes());
        out.push(BUCKET_COUNT as u8);
        for b in &self.buckets {
            out.extend_from_slice(&b.to_le_bytes());
        }
    }

    /// Decode the wire form from `buf` at `*pos`, advancing it. `None` on
    /// truncation or a bucket count this reader does not understand.
    pub fn decode_from(buf: &[u8], pos: &mut usize) -> Option<LogHistogram> {
        let count = read_u64(buf, pos)?;
        let sum = read_u64(buf, pos)?;
        let min = read_u64(buf, pos)?;
        let max = read_u64(buf, pos)?;
        let n = read_u8(buf, pos)? as usize;
        if n != BUCKET_COUNT {
            return None;
        }
        let mut buckets = [0u64; BUCKET_COUNT];
        for b in &mut buckets {
            *b = read_u64(buf, pos)?;
        }
        Some(LogHistogram {
            count,
            sum,
            min,
            max,
            buckets,
        })
    }
}

pub(crate) fn read_u64(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let bytes: [u8; 8] = buf.get(*pos..*pos + 8)?.try_into().ok()?;
    *pos += 8;
    Some(u64::from_le_bytes(bytes))
}

pub(crate) fn read_u8(buf: &[u8], pos: &mut usize) -> Option<u8> {
    let b = *buf.get(*pos)?;
    *pos += 1;
    Some(b)
}

pub(crate) fn read_u16(buf: &[u8], pos: &mut usize) -> Option<u16> {
    let bytes: [u8; 2] = buf.get(*pos..*pos + 2)?.try_into().ok()?;
    *pos += 2;
    Some(u16::from_le_bytes(bytes))
}

pub(crate) fn read_u32(buf: &[u8], pos: &mut usize) -> Option<u32> {
    let bytes: [u8; 4] = buf.get(*pos..*pos + 4)?.try_into().ok()?;
    *pos += 4;
    Some(u32::from_le_bytes(bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p999(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn buckets_follow_bit_length() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn quantiles_bound_the_true_value_from_above_within_2x() {
        let mut h = LogHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        // True p50 = 500; the estimate sits in [500, 1000).
        let p50 = h.p50();
        assert!((500..1000).contains(&p50), "p50 = {p50}");
        let p99 = h.p99();
        assert!((990..=1000).contains(&p99.min(1000)), "p99 = {p99}");
        // Quantiles never exceed the observed max.
        assert!(h.p999() <= 1000);
        assert_eq!(h.quantile(1.0), h.p999().max(h.quantile(1.0)).min(1000));
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(1000));
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), 500500);
    }

    #[test]
    fn merge_equals_recording_the_union() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut both = LogHistogram::new();
        for v in [3u64, 17, 90, 1000, 0] {
            a.record(v);
            both.record(v);
        }
        for v in [5u64, 5, 12345, u64::MAX] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
        // Merging an empty histogram is a no-op.
        let before = a.clone();
        a.merge(&LogHistogram::new());
        assert_eq!(a, before);
    }

    #[test]
    fn wire_form_roundtrips() {
        let mut h = LogHistogram::new();
        for v in [0u64, 1, 2, 1023, 1024, u64::MAX] {
            h.record(v);
        }
        let mut buf = Vec::new();
        h.encode_into(&mut buf);
        let mut pos = 0;
        let back = LogHistogram::decode_from(&buf, &mut pos).unwrap();
        assert_eq!(back, h);
        assert_eq!(pos, buf.len());
        // Truncated input is rejected.
        let mut pos = 0;
        assert!(LogHistogram::decode_from(&buf[..buf.len() - 1], &mut pos).is_none());
    }
}
