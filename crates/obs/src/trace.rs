//! Causal tracing: wire-propagated span trees over the flight recorder.
//!
//! A *span* is one timed phase of a causal tree — a client request, the
//! server-side queue wait and execution it caused, a coordinator fan-out
//! and the per-node wire ops underneath it, or a whole elasticity
//! operation. Spans are recorded as paired [`ObsEvent::SpanStart`] /
//! [`ObsEvent::SpanEnd`] events through the ordinary [`ObsRegistry`]
//! machinery, so they share the virtual clock, the ring-buffer bounds, the
//! `ObsDump` wire codec, and the JSONL trace format with every other
//! event.
//!
//! **Span id allocation.** Ids must stay unique after merging snapshots
//! from many recorders (client, coordinator, every node), so each registry
//! carries an *origin* tag and allocates `origin << 40 | seq` from an
//! atomic counter — collision-free for up to 2^40 spans per origin without
//! any cross-node coordination (and without wall-clock randomness, which
//! the workspace bans). Origin 0/seq 0 is never allocated: parent id 0
//! means "root".
//!
//! **Propagation.** Within a thread, spans nest implicitly: every live
//! [`SpanGuard`] sits on a thread-local stack and
//! [`ObsRegistry::span_follow`] parents under the innermost one, which is
//! how `ShardedNode` lock waits attach to the server execution span
//! without any API threading. Across the wire, a [`TraceContext`] rides in
//! the versioned frame extension (`ecc-net::protocol`): the receiver
//! parents its spans under the sender's `span_id`.
//!
//! **Well-formedness** is checkable: [`verify_spans`] asserts every start
//! has exactly one end, parentage is acyclic with zero orphans, and child
//! intervals nest inside their parents under the (shared) clock. The
//! simtest oracles and `cargo xtask trace` both run it.

use std::cell::RefCell;
use std::collections::HashMap;

use crate::event::ObsEvent;
use crate::registry::ObsRegistry;

/// Trace identity carried across the wire in the optional frame extension:
/// which causal tree a request belongs to and which sender span the
/// receiver's spans should parent under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// Id shared by every span of one causal tree.
    pub trace_id: u64,
    /// The sender-side span covering this request; the receiver parents
    /// its spans under it.
    pub span_id: u64,
    /// The sender span's own parent (0 = root) — carried for completeness
    /// so a receiver can reconstruct locally even from a partial dump.
    pub parent_span_id: u64,
    /// Sampling bit: receivers only record spans when set.
    pub sampled: bool,
}

thread_local! {
    /// Innermost-last stack of live spans on this thread (trace, span).
    static CURRENT: RefCell<Vec<(u64, u64)>> = const { RefCell::new(Vec::new()) };
}

/// RAII handle for an open span: records `SpanEnd` (and pops the span off
/// the thread-local stack) on drop, so every start gets an end on every
/// path — including panics and early returns.
#[must_use = "dropping the guard immediately would record an empty span"]
#[derive(Debug)]
pub struct SpanGuard {
    reg: ObsRegistry,
    trace: u64,
    span: u64,
}

impl SpanGuard {
    pub(crate) fn open(reg: &ObsRegistry, trace: u64, span: u64) -> SpanGuard {
        CURRENT.with(|c| c.borrow_mut().push((trace, span)));
        SpanGuard {
            reg: reg.clone(),
            trace,
            span,
        }
    }

    /// This span's globally unique id.
    pub fn id(&self) -> u64 {
        self.span
    }

    /// The trace this span belongs to.
    pub fn trace_id(&self) -> u64 {
        self.trace
    }

    /// The context a peer should receive to parent its spans under this
    /// one.
    pub fn context(&self) -> TraceContext {
        TraceContext {
            trace_id: self.trace,
            span_id: self.span,
            parent_span_id: 0,
            sampled: true,
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        // Guards usually drop LIFO, but a pipelined client retires its
        // root spans FIFO — remove by value (innermost-first search).
        CURRENT.with(|c| {
            let mut stack = c.borrow_mut();
            if let Some(i) = stack.iter().rposition(|&(_, s)| s == self.span) {
                stack.remove(i);
            }
        });
        let at_us = self.reg.now_us();
        self.reg.emit(ObsEvent::SpanEnd {
            at_us,
            span: self.span,
        });
    }
}

/// The innermost live span on this thread as `(trace_id, span_id)`, if
/// any. Callers that cannot use [`ObsRegistry::span_follow`] directly —
/// e.g. a client that needs the pair to scope a *wire* span — read the
/// scope here and thread it explicitly.
pub fn current_span() -> Option<(u64, u64)> {
    CURRENT.with(|c| c.borrow().last().copied())
}

/// One reconstructed span interval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Trace id.
    pub trace: u64,
    /// Span id.
    pub span: u64,
    /// Parent span id (0 = root).
    pub parent: u64,
    /// Kind tag.
    pub kind: String,
    /// Origin tag of the emitting recorder.
    pub node: u32,
    /// Start time, µs.
    pub start_us: u64,
    /// End time, µs.
    pub end_us: u64,
    /// Indices (into the returned `Vec<Span>`) of child spans.
    pub children: Vec<usize>,
}

impl Span {
    /// Span duration in µs.
    pub fn duration_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }
}

/// Pair up `SpanStart`/`SpanEnd` events into [`Span`] intervals and link
/// children to parents. Fails on duplicate ids, an end without a start, or
/// a start without an end; parent links that point at unknown spans are
/// left dangling for [`verify_spans`] to flag (the spans themselves are
/// still returned).
pub fn build_spans(events: &[ObsEvent]) -> Result<Vec<Span>, String> {
    let mut spans: Vec<Span> = Vec::new();
    let mut by_id: HashMap<u64, usize> = HashMap::new();
    let mut open: HashMap<u64, usize> = HashMap::new();
    for ev in events {
        match ev {
            ObsEvent::SpanStart {
                at_us,
                trace,
                span,
                parent,
                kind,
                node,
            } => {
                if by_id.contains_key(span) {
                    return Err(format!("duplicate span id {span:#x} ({kind})"));
                }
                by_id.insert(*span, spans.len());
                open.insert(*span, spans.len());
                spans.push(Span {
                    trace: *trace,
                    span: *span,
                    parent: *parent,
                    kind: kind.clone(),
                    node: *node,
                    start_us: *at_us,
                    end_us: *at_us,
                    children: Vec::new(),
                });
            }
            ObsEvent::SpanEnd { at_us, span } => {
                let Some(i) = open.remove(span) else {
                    return Err(format!("span_end for unknown or closed span {span:#x}"));
                };
                spans[i].end_us = *at_us;
            }
            _ => {}
        }
    }
    if let Some((&span, _)) = open.iter().next() {
        let kind = &spans[by_id[&span]].kind;
        return Err(format!("span {span:#x} ({kind}) never ended"));
    }
    for i in 0..spans.len() {
        let parent = spans[i].parent;
        if parent != 0 {
            if let Some(&p) = by_id.get(&parent) {
                spans[p].children.push(i);
            }
        }
    }
    Ok(spans)
}

/// Summary statistics from a successful [`verify_spans`] run.
#[must_use]
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanStats {
    /// Total spans.
    pub spans: usize,
    /// Root spans (parent 0).
    pub roots: usize,
    /// Distinct trace ids.
    pub traces: usize,
}

/// Assert span well-formedness over an event stream: every start has
/// exactly one end, every non-root parent exists (zero orphans), parentage
/// is acyclic, and each child's interval nests inside its parent's under
/// the shared clock. Returns summary stats on success.
///
/// Only meaningful over recorders that share one clock epoch (one
/// `SimClock`, or `TimeSource::Real` handles cloned from one `Instant`) —
/// which is how every in-process cluster here is built.
pub fn verify_spans(events: &[ObsEvent]) -> Result<SpanStats, String> {
    let spans = build_spans(events)?;
    let by_id: HashMap<u64, usize> = spans.iter().enumerate().map(|(i, s)| (s.span, i)).collect();
    let mut traces: Vec<u64> = spans.iter().map(|s| s.trace).collect();
    traces.sort_unstable();
    traces.dedup();
    let mut roots = 0usize;
    for s in &spans {
        if s.parent == 0 {
            roots += 1;
            continue;
        }
        let Some(&p) = by_id.get(&s.parent) else {
            return Err(format!(
                "orphan span {:#x} ({}): parent {:#x} not in the stream",
                s.span, s.kind, s.parent
            ));
        };
        let parent = &spans[p];
        if parent.trace != s.trace {
            return Err(format!(
                "span {:#x} ({}) crosses traces: {:#x} vs parent's {:#x}",
                s.span, s.kind, s.trace, parent.trace
            ));
        }
        if s.start_us < parent.start_us || s.end_us > parent.end_us {
            return Err(format!(
                "span {:#x} ({}) [{}, {}] escapes parent {:#x} ({}) [{}, {}]",
                s.span,
                s.kind,
                s.start_us,
                s.end_us,
                parent.span,
                parent.kind,
                parent.start_us,
                parent.end_us
            ));
        }
        // Acyclic: walk to a root; ids are unique, so a chain longer than
        // the span count must loop.
        let mut hops = 0usize;
        let mut cur = s.parent;
        while cur != 0 {
            hops += 1;
            if hops > spans.len() {
                return Err(format!("parent cycle through span {:#x}", s.span));
            }
            cur = by_id.get(&cur).map(|&i| spans[i].parent).unwrap_or(0);
        }
    }
    Ok(SpanStats {
        spans: spans.len(),
        roots,
        traces: traces.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::TimeSource;

    fn start(at: u64, trace: u64, span: u64, parent: u64, kind: &str) -> ObsEvent {
        ObsEvent::SpanStart {
            at_us: at,
            trace,
            span,
            parent,
            kind: kind.to_string(),
            node: 0,
        }
    }

    fn end(at: u64, span: u64) -> ObsEvent {
        ObsEvent::SpanEnd { at_us: at, span }
    }

    #[test]
    fn guards_emit_paired_events_and_nest_via_thread_local() {
        let reg = ObsRegistry::new(TimeSource::real());
        reg.set_origin(3);
        {
            let root = reg.span_start("req", 99, 0);
            assert_eq!(root.trace_id(), 99);
            assert_eq!(root.id() >> 40, 3);
            let child = reg.span_follow("lock_wait").expect("active parent");
            assert_eq!(child.trace_id(), 99);
            drop(child);
        }
        assert!(
            reg.span_follow("lock_wait").is_none(),
            "stack must be empty"
        );
        let snap = reg.snapshot();
        let stats = verify_spans(&snap.events).expect("well-formed");
        assert_eq!(stats.spans, 2);
        assert_eq!(stats.roots, 1);
        assert_eq!(stats.traces, 1);
        let spans = build_spans(&snap.events).unwrap();
        let root = spans.iter().find(|s| s.kind == "req").unwrap();
        let child = spans.iter().find(|s| s.kind == "lock_wait").unwrap();
        assert_eq!(child.parent, root.span);
        assert_eq!(root.children.len(), 1);
    }

    #[test]
    fn fifo_retirement_of_pipelined_roots_keeps_the_stack_sound() {
        let reg = ObsRegistry::new(TimeSource::real());
        let a = reg.span_start("req", 1, 0);
        let b = reg.span_start("req", 2, 0);
        drop(a); // FIFO: oldest first
        let follow = reg.span_follow("x").expect("b still active");
        assert_eq!(follow.trace_id(), 2);
        drop(follow);
        drop(b);
        assert!(reg.span_follow("x").is_none());
    }

    #[test]
    fn span_ids_are_unique_across_origins() {
        let a = ObsRegistry::new(TimeSource::real());
        let b = ObsRegistry::new(TimeSource::real());
        a.set_origin(1);
        b.set_origin(2);
        let s1 = a.span_start("x", 1, 0);
        let s2 = b.span_start("x", 1, 0);
        assert_ne!(s1.id(), s2.id());
        assert_ne!(s1.id(), 0, "span id 0 is reserved for 'no parent'");
    }

    #[test]
    fn verify_rejects_unended_orphaned_escaping_and_cyclic_spans() {
        // Unended.
        let evs = vec![start(1, 1, 10, 0, "a")];
        assert!(build_spans(&evs).unwrap_err().contains("never ended"));
        // End without start.
        let evs = vec![end(2, 10)];
        assert!(build_spans(&evs).unwrap_err().contains("unknown"));
        // Orphan parent.
        let evs = vec![start(1, 1, 10, 77, "a"), end(2, 10)];
        assert!(verify_spans(&evs).unwrap_err().contains("orphan"));
        // Child escapes parent interval.
        let evs = vec![
            start(5, 1, 10, 0, "p"),
            start(3, 1, 11, 10, "c"),
            end(6, 11),
            end(7, 10),
        ];
        assert!(verify_spans(&evs).unwrap_err().contains("escapes"));
        // Two spans parenting each other.
        let evs = vec![
            start(1, 1, 10, 11, "a"),
            start(1, 1, 11, 10, "b"),
            end(2, 10),
            end(2, 11),
        ];
        assert!(verify_spans(&evs).is_err());
        // Duplicate id.
        let evs = vec![start(1, 1, 10, 0, "a"), start(2, 1, 10, 0, "b")];
        assert!(build_spans(&evs).unwrap_err().contains("duplicate"));
    }

    #[test]
    fn well_formed_two_level_tree_passes() {
        let evs = vec![
            start(0, 7, 1, 0, "req"),
            start(2, 7, 2, 1, "srv"),
            start(2, 7, 3, 2, "srv_exec"),
            end(5, 3),
            end(6, 2),
            end(9, 1),
        ];
        let stats = verify_spans(&evs).expect("well-formed");
        assert_eq!(stats.spans, 3);
        assert_eq!(stats.roots, 1);
    }
}
