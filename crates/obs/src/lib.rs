//! Observability substrate for the elastic cache: flight-recorder event
//! tracing, log-bucketed latency histograms, and a per-node registry with
//! a versioned wire dump and Prometheus-style text exposition.
//!
//! The paper's evaluation is a story about *when* the cache splits,
//! migrates, merges and evicts; this crate makes those moments first-class,
//! timestamped data instead of flat counters:
//!
//! * [`ObsEvent`] / [`FlightRecorder`] — a fixed-capacity ring buffer of
//!   typed structural events (`BucketSplit`, `SweepMigrate`, `NodeMerge`,
//!   `NodeAlloc`/`NodeDealloc`, `SliceExpire`, `EvictBatch`,
//!   `FrameRx`/`FrameTx`, `InsertError`), dumpable as JSONL for post-mortem
//!   analysis and CI artifact upload.
//! * [`LogHistogram`] — mergeable power-of-two-bucketed latency histograms
//!   with p50/p90/p99/p99.9 readouts.
//! * [`ObsRegistry`] — a cheaply cloneable handle bundling one recorder and
//!   a set of named histograms; [`wire`] serializes its [`ObsSnapshot`] for
//!   the `ObsDump` protocol op, and [`ObsSnapshot::render_prometheus`]
//!   renders the merged cluster view as exposition text.
//!
//! Timestamps flow through [`TimeSource`]: the simulated cache injects its
//! `SimClock`, the live TCP path uses a process-relative monotonic reading.
//! This crate is a measurement harness (like `ecc-bench`) and is therefore
//! exempt from the `no-wallclock` lint; library crates never read the wall
//! clock directly — they go through a [`TimeSource`] handed to them.

#![deny(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod event;
pub mod hist;
pub mod recorder;
pub mod registry;
pub mod trace;
pub mod wire;

pub use event::ObsEvent;
pub use hist::LogHistogram;
pub use recorder::FlightRecorder;
pub use registry::{ObsRegistry, ObsSnapshot, TimeSource};
pub use trace::{
    build_spans, current_span, verify_spans, Span, SpanGuard, SpanStats, TraceContext,
};
pub use wire::{decode_dump, encode_dump, OBS_DUMP_VERSION};
