//! Typed flight-recorder events and their JSONL codec.
//!
//! One event = one structural moment in the cluster's life, stamped with
//! the virtual (or process-relative) time it happened at. The JSON form is
//! a single line with a stable field order, so a recorded trace is both
//! machine-parseable (`ObsEvent::from_json`) and diffable by eye.

/// One recorded observation. Node identifiers are raw `u32`s so the event
/// type stays independent of `ecc-core` / `ecc-net` (both emit into it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObsEvent {
    /// A bucket was median-split (or relocated whole) off an overflowing
    /// node; `new_node` now owns the bucket at `bucket`.
    BucketSplit {
        /// Event time, µs.
        at_us: u64,
        /// The overflowing node that was split.
        node: u32,
        /// The node that received the swept records.
        new_node: u32,
        /// Hash-line position of the (re)threaded bucket.
        bucket: u64,
    },
    /// A sweep-and-migrate moved records between nodes (Algorithm 2).
    SweepMigrate {
        /// Event time (sweep start), µs.
        at_us: u64,
        /// Source node.
        src: u32,
        /// Destination node.
        dest: u32,
        /// Records moved.
        records: u64,
        /// Payload bytes moved.
        bytes: u64,
        /// Virtual/real time the sweep took, µs.
        duration_us: u64,
        /// Whether the destination was freshly allocated for this sweep.
        allocated: bool,
    },
    /// Contraction drained node `src` into `dest`.
    NodeMerge {
        /// Event time, µs.
        at_us: u64,
        /// The drained (retiring) node.
        src: u32,
        /// The surviving node.
        dest: u32,
        /// Records moved.
        records: u64,
    },
    /// A cache node came online.
    NodeAlloc {
        /// Event time, µs.
        at_us: u64,
        /// The new node.
        node: u32,
    },
    /// A cache node was released (merged away, failed, or shut down).
    NodeDealloc {
        /// Event time, µs.
        at_us: u64,
        /// The released node.
        node: u32,
    },
    /// A sliding-window slice expired and was scored for eviction.
    SliceExpire {
        /// Event time, µs.
        at_us: u64,
        /// Running expiration count (1-based).
        expiration: u64,
        /// Victims selected by decay scoring (before residency filtering).
        victims: u64,
    },
    /// A batch of eviction victims was removed from one node. `keys` holds
    /// the keys actually evicted, in eviction order — the simtest oracle
    /// compares them bit-exactly against the model window's victims.
    EvictBatch {
        /// Event time, µs.
        at_us: u64,
        /// The node the keys were removed from.
        node: u32,
        /// The evicted keys, in eviction order.
        keys: Vec<u64>,
    },
    /// The server request loop received one frame.
    FrameRx {
        /// Event time, µs.
        at_us: u64,
        /// Request opcode byte (0 when undecodable).
        op: u8,
        /// Frame payload bytes.
        bytes: u64,
    },
    /// The server request loop sent one response frame.
    FrameTx {
        /// Event time, µs.
        at_us: u64,
        /// Request opcode byte the response answers (0 when undecodable).
        op: u8,
        /// Response payload bytes.
        bytes: u64,
    },
    /// An admission failed mid-insert and the record was served uncached.
    InsertError {
        /// Event time, µs.
        at_us: u64,
        /// The key whose admission failed.
        key: u64,
    },
    /// A causal span opened (request phase, coordinator fan-out, elasticity
    /// op). Span ids are globally unique (`origin << 40 | seq`, see
    /// `trace::span id allocation`), so merged multi-node snapshots
    /// reconstruct one tree.
    SpanStart {
        /// Event time, µs.
        at_us: u64,
        /// Trace id shared by every span of one causal tree.
        trace: u64,
        /// This span's globally unique id.
        span: u64,
        /// Parent span id (0 = root).
        parent: u64,
        /// Span kind tag (`req`, `srv`, `srv_queue`, `srv_exec`,
        /// `lock_wait`, `wire:<op>`, `coord_fanout`, `elastic_*`).
        kind: String,
        /// Origin tag of the recorder that emitted it (node id / client).
        node: u32,
    },
    /// The matching close of a [`ObsEvent::SpanStart`].
    SpanEnd {
        /// Event time, µs.
        at_us: u64,
        /// The span being closed.
        span: u64,
    },
}

impl ObsEvent {
    /// The event's `type` tag in the JSON form.
    pub fn kind(&self) -> &'static str {
        match self {
            ObsEvent::BucketSplit { .. } => "bucket_split",
            ObsEvent::SweepMigrate { .. } => "sweep_migrate",
            ObsEvent::NodeMerge { .. } => "node_merge",
            ObsEvent::NodeAlloc { .. } => "node_alloc",
            ObsEvent::NodeDealloc { .. } => "node_dealloc",
            ObsEvent::SliceExpire { .. } => "slice_expire",
            ObsEvent::EvictBatch { .. } => "evict_batch",
            ObsEvent::FrameRx { .. } => "frame_rx",
            ObsEvent::FrameTx { .. } => "frame_tx",
            ObsEvent::InsertError { .. } => "insert_error",
            ObsEvent::SpanStart { .. } => "span_start",
            ObsEvent::SpanEnd { .. } => "span_end",
        }
    }

    /// The event's timestamp in microseconds.
    pub fn at_us(&self) -> u64 {
        match *self {
            ObsEvent::BucketSplit { at_us, .. }
            | ObsEvent::SweepMigrate { at_us, .. }
            | ObsEvent::NodeMerge { at_us, .. }
            | ObsEvent::NodeAlloc { at_us, .. }
            | ObsEvent::NodeDealloc { at_us, .. }
            | ObsEvent::SliceExpire { at_us, .. }
            | ObsEvent::EvictBatch { at_us, .. }
            | ObsEvent::FrameRx { at_us, .. }
            | ObsEvent::FrameTx { at_us, .. }
            | ObsEvent::InsertError { at_us, .. } => at_us,
            ObsEvent::SpanStart { at_us, .. } | ObsEvent::SpanEnd { at_us, .. } => at_us,
        }
    }

    /// One JSON object on one line, stable field order, no trailing newline.
    pub fn to_json(&self) -> String {
        match self {
            ObsEvent::BucketSplit {
                at_us,
                node,
                new_node,
                bucket,
            } => format!(
                "{{\"type\":\"bucket_split\",\"at_us\":{at_us},\"node\":{node},\
                 \"new_node\":{new_node},\"bucket\":{bucket}}}"
            ),
            ObsEvent::SweepMigrate {
                at_us,
                src,
                dest,
                records,
                bytes,
                duration_us,
                allocated,
            } => format!(
                "{{\"type\":\"sweep_migrate\",\"at_us\":{at_us},\"src\":{src},\
                 \"dest\":{dest},\"records\":{records},\"bytes\":{bytes},\
                 \"duration_us\":{duration_us},\"allocated\":{allocated}}}"
            ),
            ObsEvent::NodeMerge {
                at_us,
                src,
                dest,
                records,
            } => format!(
                "{{\"type\":\"node_merge\",\"at_us\":{at_us},\"src\":{src},\
                 \"dest\":{dest},\"records\":{records}}}"
            ),
            ObsEvent::NodeAlloc { at_us, node } => {
                format!("{{\"type\":\"node_alloc\",\"at_us\":{at_us},\"node\":{node}}}")
            }
            ObsEvent::NodeDealloc { at_us, node } => {
                format!("{{\"type\":\"node_dealloc\",\"at_us\":{at_us},\"node\":{node}}}")
            }
            ObsEvent::SliceExpire {
                at_us,
                expiration,
                victims,
            } => format!(
                "{{\"type\":\"slice_expire\",\"at_us\":{at_us},\
                 \"expiration\":{expiration},\"victims\":{victims}}}"
            ),
            ObsEvent::EvictBatch { at_us, node, keys } => {
                let mut list = String::new();
                for (i, k) in keys.iter().enumerate() {
                    if i > 0 {
                        list.push(',');
                    }
                    list.push_str(&k.to_string());
                }
                format!(
                    "{{\"type\":\"evict_batch\",\"at_us\":{at_us},\"node\":{node},\
                     \"keys\":[{list}]}}"
                )
            }
            ObsEvent::FrameRx { at_us, op, bytes } => {
                format!("{{\"type\":\"frame_rx\",\"at_us\":{at_us},\"op\":{op},\"bytes\":{bytes}}}")
            }
            ObsEvent::FrameTx { at_us, op, bytes } => {
                format!("{{\"type\":\"frame_tx\",\"at_us\":{at_us},\"op\":{op},\"bytes\":{bytes}}}")
            }
            ObsEvent::InsertError { at_us, key } => {
                format!("{{\"type\":\"insert_error\",\"at_us\":{at_us},\"key\":{key}}}")
            }
            ObsEvent::SpanStart {
                at_us,
                trace,
                span,
                parent,
                kind,
                node,
            } => format!(
                "{{\"type\":\"span_start\",\"at_us\":{at_us},\"trace\":{trace},\
                 \"span\":{span},\"parent\":{parent},\"kind\":\"{kind}\",\"node\":{node}}}"
            ),
            ObsEvent::SpanEnd { at_us, span } => {
                format!("{{\"type\":\"span_end\",\"at_us\":{at_us},\"span\":{span}}}")
            }
        }
    }

    /// Parse one line produced by [`ObsEvent::to_json`]. Returns `None` on
    /// anything malformed — a trace with unknown event types (a newer
    /// writer) degrades to skipped lines instead of an error.
    pub fn from_json(line: &str) -> Option<ObsEvent> {
        let kind = json_str(line, "type")?;
        let at_us = json_u64(line, "at_us")?;
        Some(match kind {
            "bucket_split" => ObsEvent::BucketSplit {
                at_us,
                node: json_u64(line, "node")? as u32,
                new_node: json_u64(line, "new_node")? as u32,
                bucket: json_u64(line, "bucket")?,
            },
            "sweep_migrate" => ObsEvent::SweepMigrate {
                at_us,
                src: json_u64(line, "src")? as u32,
                dest: json_u64(line, "dest")? as u32,
                records: json_u64(line, "records")?,
                bytes: json_u64(line, "bytes")?,
                duration_us: json_u64(line, "duration_us")?,
                allocated: json_bool(line, "allocated")?,
            },
            "node_merge" => ObsEvent::NodeMerge {
                at_us,
                src: json_u64(line, "src")? as u32,
                dest: json_u64(line, "dest")? as u32,
                records: json_u64(line, "records")?,
            },
            "node_alloc" => ObsEvent::NodeAlloc {
                at_us,
                node: json_u64(line, "node")? as u32,
            },
            "node_dealloc" => ObsEvent::NodeDealloc {
                at_us,
                node: json_u64(line, "node")? as u32,
            },
            "slice_expire" => ObsEvent::SliceExpire {
                at_us,
                expiration: json_u64(line, "expiration")?,
                victims: json_u64(line, "victims")?,
            },
            "evict_batch" => ObsEvent::EvictBatch {
                at_us,
                node: json_u64(line, "node")? as u32,
                keys: json_u64_array(line, "keys")?,
            },
            "frame_rx" => ObsEvent::FrameRx {
                at_us,
                op: json_u64(line, "op")? as u8,
                bytes: json_u64(line, "bytes")?,
            },
            "frame_tx" => ObsEvent::FrameTx {
                at_us,
                op: json_u64(line, "op")? as u8,
                bytes: json_u64(line, "bytes")?,
            },
            "insert_error" => ObsEvent::InsertError {
                at_us,
                key: json_u64(line, "key")?,
            },
            "span_start" => ObsEvent::SpanStart {
                at_us,
                trace: json_u64(line, "trace")?,
                span: json_u64(line, "span")?,
                parent: json_u64(line, "parent")?,
                kind: json_str(line, "kind")?.to_owned(),
                node: json_u64(line, "node")? as u32,
            },
            "span_end" => ObsEvent::SpanEnd {
                at_us,
                span: json_u64(line, "span")?,
            },
            _ => return None,
        })
    }
}

/// The raw text following `"key":` in `line`, up to the value's end.
fn json_value<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let start = line.find(&needle)? + needle.len();
    let rest = line.get(start..)?;
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest.get(..end)
}

fn json_u64(line: &str, key: &str) -> Option<u64> {
    json_value(line, key)?.trim().parse().ok()
}

fn json_bool(line: &str, key: &str) -> Option<bool> {
    match json_value(line, key)?.trim() {
        "true" => Some(true),
        "false" => Some(false),
        _ => None,
    }
}

fn json_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    json_value(line, key)?
        .trim()
        .strip_prefix('"')?
        .strip_suffix('"')
}

fn json_u64_array(line: &str, key: &str) -> Option<Vec<u64>> {
    let needle = format!("\"{key}\":[");
    let start = line.find(&needle)? + needle.len();
    let rest = line.get(start..)?;
    let body = rest.get(..rest.find(']')?)?;
    if body.trim().is_empty() {
        return Some(Vec::new());
    }
    body.split(',').map(|s| s.trim().parse().ok()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<ObsEvent> {
        vec![
            ObsEvent::BucketSplit {
                at_us: 10,
                node: 0,
                new_node: 3,
                bucket: 42,
            },
            ObsEvent::SweepMigrate {
                at_us: 11,
                src: 0,
                dest: 3,
                records: 7,
                bytes: 700,
                duration_us: 99,
                allocated: true,
            },
            ObsEvent::NodeMerge {
                at_us: 12,
                src: 3,
                dest: 0,
                records: 2,
            },
            ObsEvent::NodeAlloc { at_us: 13, node: 4 },
            ObsEvent::NodeDealloc { at_us: 14, node: 3 },
            ObsEvent::SliceExpire {
                at_us: 15,
                expiration: 2,
                victims: 5,
            },
            ObsEvent::EvictBatch {
                at_us: 16,
                node: 0,
                keys: vec![1, 9, u64::MAX],
            },
            ObsEvent::EvictBatch {
                at_us: 17,
                node: 1,
                keys: vec![],
            },
            ObsEvent::FrameRx {
                at_us: 18,
                op: 0x02,
                bytes: 64,
            },
            ObsEvent::FrameTx {
                at_us: 19,
                op: 0x02,
                bytes: 1,
            },
            ObsEvent::InsertError { at_us: 20, key: 77 },
            ObsEvent::SpanStart {
                at_us: 21,
                trace: 0xABCD,
                span: (7u64 << 40) | 1,
                parent: 0,
                kind: "req".to_string(),
                node: 7,
            },
            ObsEvent::SpanEnd {
                at_us: 22,
                span: (7u64 << 40) | 1,
            },
        ]
    }

    #[test]
    fn json_roundtrips_every_variant() {
        for ev in samples() {
            let line = ev.to_json();
            assert_eq!(
                ObsEvent::from_json(&line),
                Some(ev.clone()),
                "roundtrip failed for {line}"
            );
            assert!(line.contains(ev.kind()));
            assert_eq!(
                ObsEvent::from_json(&line).map(|e| e.at_us()),
                Some(ev.at_us())
            );
        }
    }

    #[test]
    fn malformed_lines_are_rejected_not_panicked() {
        for bad in [
            "",
            "{}",
            "{\"type\":\"bucket_split\"}",
            "{\"type\":\"martian\",\"at_us\":1}",
            "{\"type\":\"evict_batch\",\"at_us\":1,\"node\":0,\"keys\":[1,x]}",
            "not json at all",
        ] {
            assert_eq!(ObsEvent::from_json(bad), None, "accepted {bad:?}");
        }
    }
}
