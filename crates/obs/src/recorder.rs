//! Fixed-capacity flight recorder for structural cache events.
//!
//! The recorder is a bounded ring: when full, the oldest event is dropped
//! and a drop counter advances, so a misbehaving run degrades to "recent
//! history" instead of unbounded memory. Every event gets a monotonically
//! increasing sequence number; `events_since(seq)` lets incremental readers
//! (the simtest event-stream oracle) drain exactly the events emitted since
//! their last look, even across drops.

use std::collections::VecDeque;

use crate::event::ObsEvent;

/// Default ring capacity when none is given.
pub const DEFAULT_CAPACITY: usize = 4096;

/// A bounded ring buffer of [`ObsEvent`]s with stable sequence numbers.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    capacity: usize,
    /// Sequence number the next pushed event will get.
    next_seq: u64,
    /// Events dropped because the ring was full.
    dropped: u64,
    ring: VecDeque<ObsEvent>,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new(DEFAULT_CAPACITY)
    }
}

impl FlightRecorder {
    /// A recorder holding at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            capacity,
            next_seq: 0,
            dropped: 0,
            ring: VecDeque::with_capacity(capacity),
        }
    }

    /// Record one event, evicting the oldest if the ring is full.
    pub fn push(&mut self, ev: ObsEvent) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(ev);
        self.next_seq += 1;
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Sequence number the next event will receive (== total events ever
    /// pushed).
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Events dropped so far because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Sequence number of the oldest event still held.
    fn first_seq(&self) -> u64 {
        self.next_seq - self.ring.len() as u64
    }

    /// All events with sequence number `>= seq` that are still in the ring,
    /// oldest first. A reader that remembers `next_seq()` between calls sees
    /// every retained event exactly once.
    pub fn events_since(&self, seq: u64) -> impl Iterator<Item = (u64, &ObsEvent)> {
        let first = self.first_seq();
        let skip = seq.saturating_sub(first) as usize;
        self.ring
            .iter()
            .enumerate()
            .skip(skip)
            .map(move |(i, ev)| (first + i as u64, ev))
    }

    /// Iterate all retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &ObsEvent> {
        self.ring.iter()
    }

    /// Render the retained events as JSONL, one event per line, oldest
    /// first.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in &self.ring {
            out.push_str(&ev.to_json());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc(at_us: u64, node: u32) -> ObsEvent {
        ObsEvent::NodeAlloc { at_us, node }
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let mut r = FlightRecorder::new(3);
        for i in 0..5u32 {
            r.push(alloc(i as u64, i));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        assert_eq!(r.next_seq(), 5);
        let kept: Vec<u64> = r.iter().map(|e| e.at_us()).collect();
        assert_eq!(kept, vec![2, 3, 4]);
    }

    #[test]
    fn events_since_drains_incrementally() {
        let mut r = FlightRecorder::new(8);
        r.push(alloc(0, 0));
        r.push(alloc(1, 1));
        let cursor = r.next_seq();
        assert_eq!(r.events_since(cursor).count(), 0);
        r.push(alloc(2, 2));
        r.push(alloc(3, 3));
        let seen: Vec<(u64, u64)> = r
            .events_since(cursor)
            .map(|(s, e)| (s, e.at_us()))
            .collect();
        assert_eq!(seen, vec![(2, 2), (3, 3)]);
        // A cursor older than the retained window just yields everything.
        let all = r.events_since(0).count();
        assert_eq!(all, 4);
    }

    /// Regression (ISSUE 9): an `ObsDump`-style incremental reader holds a
    /// cursor while the ring keeps wrapping past it. The drop count must
    /// stay exact and `events_since` must resume at precisely the oldest
    /// retained sequence — every event is either counted as dropped or
    /// returned exactly once, never both, never neither.
    #[test]
    fn cursoring_stays_exact_while_the_ring_wraps_past_a_dump_in_flight() {
        let cap = 4;
        let mut r = FlightRecorder::new(cap);
        for i in 0..3u64 {
            r.push(alloc(i, 0));
        }
        // Dump begins: the reader remembers where it stopped.
        let cursor = r.next_seq();
        assert_eq!(cursor, 3);
        let dropped_at_dump = r.dropped();

        // The ring wraps past the cursor while the dump is "in flight":
        // 9 more events into a 4-slot ring overwrite everything retained
        // at dump time and then some.
        for i in 3..12u64 {
            r.push(alloc(i, 0));
        }
        assert_eq!(r.next_seq(), 12);
        assert_eq!(r.dropped(), 12 - cap as u64);

        // The reader resumes: it gets exactly the retained suffix, in
        // order, each seq once.
        let seen: Vec<(u64, u64)> = r
            .events_since(cursor)
            .map(|(s, e)| (s, e.at_us()))
            .collect();
        assert_eq!(seen, vec![(8, 8), (9, 9), (10, 10), (11, 11)]);

        // Exact accounting: of the 9 events emitted since the cursor,
        // 4 came back and 5 are covered by the drop counter. Drops of
        // pre-cursor events (seqs 0–2 here) must not be double-counted
        // against the reader: dropped() counts ring evictions, and the
        // evicted pre-cursor seqs were already delivered before the dump.
        let emitted_since = r.next_seq() - cursor;
        let lost_since_cursor = r.dropped().saturating_sub(cursor.max(dropped_at_dump));
        assert_eq!(emitted_since, 9);
        assert_eq!(lost_since_cursor, 5);
        assert_eq!(emitted_since, seen.len() as u64 + lost_since_cursor);
    }

    #[test]
    fn jsonl_roundtrips_through_event_parser() {
        let mut r = FlightRecorder::new(4);
        r.push(ObsEvent::BucketSplit {
            at_us: 7,
            node: 1,
            new_node: 2,
            bucket: 99,
        });
        r.push(ObsEvent::EvictBatch {
            at_us: 9,
            node: 2,
            keys: vec![1, 2, 3],
        });
        let text = r.to_jsonl();
        let back: Vec<ObsEvent> = text.lines().filter_map(ObsEvent::from_json).collect();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].kind(), "bucket_split");
        assert_eq!(back[1].kind(), "evict_batch");
    }
}
