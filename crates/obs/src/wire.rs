//! Versioned serialization of [`ObsSnapshot`] for the `ObsDump` wire op.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! u16 version            currently 3
//! u64 dropped            events lost to ring overflow
//! u64 spans_dropped      root spans skipped by trace sampling (v2+)
//! u32 hist_count
//!   per hist: u16 name_len, name bytes (UTF-8),
//!             LogHistogram wire form (count/sum/min/max/bucket-count/buckets)
//! u32 gauge_count        (v3+)
//!   per gauge: u16 name_len, name bytes (UTF-8), u64 value
//! u32 event_count
//!   per event: u32 json_len, JSON bytes (one ObsEvent line, no newline)
//! ```
//!
//! Events travel as their JSONL form so the dump and the on-disk trace share
//! one schema. A decoder skips event lines whose `type` it does not know —
//! adding event kinds is a non-breaking change; changing the integer layout
//! requires bumping [`OBS_DUMP_VERSION`].

use std::collections::BTreeMap;

use crate::event::ObsEvent;
use crate::hist::{read_u16, read_u32, read_u64, LogHistogram};
use crate::registry::ObsSnapshot;

/// Current dump format version. v2 added the `spans_dropped` counter (the
/// tracing layer's sampling knob); v3 added the gauge section (slab-class
/// occupancy). Older dumps are still decoded, reading the missing parts
/// as 0 / empty.
pub const OBS_DUMP_VERSION: u16 = 3;

/// Serialize a snapshot into the versioned dump form.
pub fn encode_dump(snap: &ObsSnapshot) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + snap.hists.len() * 600 + snap.events.len() * 96);
    out.extend_from_slice(&OBS_DUMP_VERSION.to_le_bytes());
    out.extend_from_slice(&snap.dropped.to_le_bytes());
    out.extend_from_slice(&snap.spans_dropped.to_le_bytes());
    out.extend_from_slice(&(snap.hists.len() as u32).to_le_bytes());
    for (name, h) in &snap.hists {
        let name_bytes = name.as_bytes();
        out.extend_from_slice(&(name_bytes.len() as u16).to_le_bytes());
        out.extend_from_slice(name_bytes);
        h.encode_into(&mut out);
    }
    out.extend_from_slice(&(snap.gauges.len() as u32).to_le_bytes());
    for (name, v) in &snap.gauges {
        let name_bytes = name.as_bytes();
        out.extend_from_slice(&(name_bytes.len() as u16).to_le_bytes());
        out.extend_from_slice(name_bytes);
        out.extend_from_slice(&v.to_le_bytes());
    }
    out.extend_from_slice(&(snap.events.len() as u32).to_le_bytes());
    for ev in &snap.events {
        let json = ev.to_json();
        out.extend_from_slice(&(json.len() as u32).to_le_bytes());
        out.extend_from_slice(json.as_bytes());
    }
    out
}

/// Decode a versioned dump. `None` on truncation, a version this reader does
/// not understand, or malformed structure. Unknown event kinds inside a
/// well-formed dump are skipped, not an error.
pub fn decode_dump(buf: &[u8]) -> Option<ObsSnapshot> {
    let mut pos = 0usize;
    let version = read_u16(buf, &mut pos)?;
    if version == 0 || version > OBS_DUMP_VERSION {
        return None;
    }
    let dropped = read_u64(buf, &mut pos)?;
    let spans_dropped = if version >= 2 {
        read_u64(buf, &mut pos)?
    } else {
        0
    };
    let hist_count = read_u32(buf, &mut pos)? as usize;
    // A histogram needs at least 37 bytes on the wire; reject counts the
    // buffer cannot possibly hold before allocating.
    if hist_count > buf.len() / 37 + 1 {
        return None;
    }
    let mut hists = BTreeMap::new();
    for _ in 0..hist_count {
        let name_len = read_u16(buf, &mut pos)? as usize;
        let name_bytes = buf.get(pos..pos + name_len)?;
        pos += name_len;
        let name = std::str::from_utf8(name_bytes).ok()?.to_owned();
        let h = LogHistogram::decode_from(buf, &mut pos)?;
        hists.insert(name, h);
    }
    let mut gauges = BTreeMap::new();
    if version >= 3 {
        let gauge_count = read_u32(buf, &mut pos)? as usize;
        // A gauge needs at least 10 bytes on the wire.
        if gauge_count > buf.len() / 10 + 1 {
            return None;
        }
        for _ in 0..gauge_count {
            let name_len = read_u16(buf, &mut pos)? as usize;
            let name_bytes = buf.get(pos..pos + name_len)?;
            pos += name_len;
            let name = std::str::from_utf8(name_bytes).ok()?.to_owned();
            let v = read_u64(buf, &mut pos)?;
            gauges.insert(name, v);
        }
    }
    let event_count = read_u32(buf, &mut pos)? as usize;
    if event_count > buf.len() / 4 + 1 {
        return None;
    }
    let mut events = Vec::new();
    for _ in 0..event_count {
        let json_len = read_u32(buf, &mut pos)? as usize;
        let json_bytes = buf.get(pos..pos + json_len)?;
        pos += json_len;
        let line = std::str::from_utf8(json_bytes).ok()?;
        if let Some(ev) = ObsEvent::from_json(line) {
            events.push(ev);
        }
    }
    if pos != buf.len() {
        return None;
    }
    Some(ObsSnapshot {
        dropped,
        spans_dropped,
        hists,
        gauges,
        events,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> ObsSnapshot {
        let mut snap = ObsSnapshot::new();
        snap.dropped = 5;
        snap.spans_dropped = 2;
        let mut h = LogHistogram::new();
        for v in [1u64, 10, 100, 1000] {
            h.record(v);
        }
        snap.hists.insert("server_op_us:get".into(), h.clone());
        snap.hists.insert("coord_fanout_us".into(), h);
        snap.gauges.insert("slab_live_slots:64".into(), 17);
        snap.gauges.insert("slab_total_slots:64".into(), 1024);
        snap.events.push(ObsEvent::BucketSplit {
            at_us: 3,
            node: 0,
            new_node: 1,
            bucket: 42,
        });
        snap.events.push(ObsEvent::EvictBatch {
            at_us: 9,
            node: 1,
            keys: vec![7, 8],
        });
        snap
    }

    #[test]
    fn dump_roundtrips() {
        let snap = sample_snapshot();
        let bytes = encode_dump(&snap);
        let back = decode_dump(&bytes).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn wrong_version_and_truncation_are_rejected() {
        let snap = sample_snapshot();
        let mut bytes = encode_dump(&snap);
        for cut in [0, 1, 2, 9, bytes.len() - 1] {
            assert!(decode_dump(&bytes[..cut]).is_none(), "cut at {cut}");
        }
        bytes[0] = 0xFF;
        assert!(decode_dump(&bytes).is_none());
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = encode_dump(&sample_snapshot());
        bytes.push(0);
        assert!(decode_dump(&bytes).is_none());
    }

    #[test]
    fn empty_snapshot_roundtrips() {
        let snap = ObsSnapshot::new();
        let bytes = encode_dump(&snap);
        assert_eq!(decode_dump(&bytes).unwrap(), snap);
    }

    #[test]
    fn span_events_survive_the_dump() {
        let mut snap = ObsSnapshot::new();
        snap.events.push(ObsEvent::SpanStart {
            at_us: 1,
            trace: 9,
            span: (3u64 << 40) | 4,
            parent: 0,
            kind: "req".into(),
            node: 3,
        });
        snap.events.push(ObsEvent::SpanEnd {
            at_us: 2,
            span: (3u64 << 40) | 4,
        });
        let back = decode_dump(&encode_dump(&snap)).unwrap();
        assert_eq!(back, snap);
    }

    /// A v2 dump (pre-gauges peer) still decodes: same layout minus the
    /// gauge section, which reads as empty.
    #[test]
    fn legacy_v2_dump_still_decodes() {
        let mut v2 = Vec::new();
        v2.extend_from_slice(&2u16.to_le_bytes()); // version 2
        v2.extend_from_slice(&4u64.to_le_bytes()); // dropped
        v2.extend_from_slice(&1u64.to_le_bytes()); // spans_dropped
        v2.extend_from_slice(&0u32.to_le_bytes()); // hist_count
        v2.extend_from_slice(&0u32.to_le_bytes()); // event_count
        let snap = decode_dump(&v2).expect("v2 decodes");
        assert_eq!(snap.dropped, 4);
        assert_eq!(snap.spans_dropped, 1);
        assert!(snap.gauges.is_empty());
    }

    /// A v1 dump (pre-tracing peer) still decodes: the layout was
    /// identical except for the missing `spans_dropped` word, which reads
    /// as 0.
    #[test]
    fn legacy_v1_dump_still_decodes() {
        let mut v1 = Vec::new();
        v1.extend_from_slice(&1u16.to_le_bytes()); // version 1
        v1.extend_from_slice(&7u64.to_le_bytes()); // dropped
        v1.extend_from_slice(&0u32.to_le_bytes()); // hist_count
        v1.extend_from_slice(&1u32.to_le_bytes()); // event_count
        let json = ObsEvent::NodeAlloc { at_us: 3, node: 1 }.to_json();
        v1.extend_from_slice(&(json.len() as u32).to_le_bytes());
        v1.extend_from_slice(json.as_bytes());
        let snap = decode_dump(&v1).expect("v1 decodes");
        assert_eq!(snap.dropped, 7);
        assert_eq!(snap.spans_dropped, 0);
        assert_eq!(snap.events.len(), 1);
    }
}
