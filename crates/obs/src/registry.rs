//! Per-node observability registry and snapshot aggregation.
//!
//! An [`ObsRegistry`] bundles one [`FlightRecorder`] with a set of named
//! [`LogHistogram`]s behind a cheaply cloneable handle, so a server, its
//! connection threads, and the coordinator can all write into the same
//! store. [`ObsSnapshot`] is the immutable, mergeable read-out: the
//! coordinator fans out `ObsDump` to every node, merges the snapshots, and
//! renders one cluster-wide Prometheus-style exposition.
//!
//! Histogram naming convention: `metric` or `metric:label`. The label part
//! becomes an `op="label"` Prometheus label, so `server_op_us:get` renders
//! as `ecc_server_op_us{op="get",...}`.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use ecc_cloudsim::SimClock;
use parking_lot::Mutex;

use crate::event::ObsEvent;
use crate::hist::LogHistogram;
use crate::recorder::{FlightRecorder, DEFAULT_CAPACITY};
use crate::trace::{current_span, SpanGuard};

/// Where timestamps come from. Simulated components inject their
/// [`SimClock`]; the live TCP path uses a process-relative monotonic
/// reading so library crates never touch the wall clock themselves.
#[derive(Debug, Clone)]
pub enum TimeSource {
    /// Virtual time from the deterministic simulation clock.
    Sim(SimClock),
    /// Monotonic micros since the captured epoch.
    Real(Instant),
}

impl TimeSource {
    /// A real-time source anchored at "now".
    pub fn real() -> Self {
        TimeSource::Real(Instant::now())
    }

    /// Current time in microseconds under this source.
    pub fn now_us(&self) -> u64 {
        match self {
            TimeSource::Sim(clock) => clock.now_us(),
            TimeSource::Real(epoch) => epoch.elapsed().as_micros() as u64,
        }
    }
}

struct Inner {
    time: TimeSource,
    recorder: Mutex<FlightRecorder>,
    hists: Mutex<BTreeMap<String, LogHistogram>>,
    /// Last-write-wins named gauges (`metric` or `metric:label`), e.g. the
    /// slab arena's per-class occupancy.
    gauges: Mutex<BTreeMap<String, u64>>,
    /// Origin tag baked into span ids (`origin << 40 | seq`) so spans from
    /// different recorders stay unique after a snapshot merge.
    origin: AtomicU32,
    /// Next span sequence number; starts at 1 so span id 0 (= "no
    /// parent") is never allocated.
    span_seq: AtomicU64,
    /// Root spans skipped by the sampling knob (tracing overhead bound).
    spans_dropped: AtomicU64,
}

/// Shared handle to one node's recorder + histograms. Clones share state.
#[derive(Clone)]
pub struct ObsRegistry {
    inner: Arc<Inner>,
}

impl ObsRegistry {
    /// A registry with the default recorder capacity.
    pub fn new(time: TimeSource) -> Self {
        Self::with_capacity(time, DEFAULT_CAPACITY)
    }

    /// A registry whose flight recorder retains at most `capacity` events.
    pub fn with_capacity(time: TimeSource, capacity: usize) -> Self {
        Self {
            inner: Arc::new(Inner {
                time,
                recorder: Mutex::new(FlightRecorder::new(capacity)),
                hists: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
                origin: AtomicU32::new(0),
                span_seq: AtomicU64::new(1),
                spans_dropped: AtomicU64::new(0),
            }),
        }
    }

    /// Set the origin tag baked into this registry's span ids. Give every
    /// recorder in a cluster a distinct origin (node id, a client tag) so
    /// merged snapshots cannot collide.
    pub fn set_origin(&self, origin: u32) {
        self.inner.origin.store(origin, Ordering::Relaxed);
    }

    /// Allocate the next globally unique span id.
    fn next_span_id(&self) -> u64 {
        let origin = self.inner.origin.load(Ordering::Relaxed) as u64;
        let seq = self.inner.span_seq.fetch_add(1, Ordering::Relaxed);
        (origin << 40) | (seq & ((1 << 40) - 1))
    }

    /// Open a span under `parent` (0 = root) stamped "now"; the returned
    /// guard records the matching `SpanEnd` on drop.
    pub fn span_start(&self, kind: &'static str, trace_id: u64, parent: u64) -> SpanGuard {
        let at_us = self.now_us();
        self.span_start_at(kind, trace_id, parent, at_us)
    }

    /// Open a span whose start is back-dated to `at_us` — for phases whose
    /// beginning was observed before the trace context was decoded (a
    /// frame that arrived at the top of a reactor sweep).
    pub fn span_start_at(
        &self,
        kind: &'static str,
        trace_id: u64,
        parent: u64,
        at_us: u64,
    ) -> SpanGuard {
        let span = self.next_span_id();
        self.emit(ObsEvent::SpanStart {
            at_us,
            trace: trace_id,
            span,
            parent,
            kind: kind.to_string(),
            node: self.inner.origin.load(Ordering::Relaxed),
        });
        SpanGuard::open(self, trace_id, span)
    }

    /// Open a root span that begins a fresh trace: the span's own globally
    /// unique id doubles as the trace id, so starting a trace needs no
    /// separate id allocator (and no wall clock or randomness, which the
    /// workspace bans).
    pub fn span_root(&self, kind: &'static str) -> SpanGuard {
        let span = self.next_span_id();
        self.emit(ObsEvent::SpanStart {
            at_us: self.now_us(),
            trace: span,
            span,
            parent: 0,
            kind: kind.to_string(),
            node: self.inner.origin.load(Ordering::Relaxed),
        });
        SpanGuard::open(self, span, span)
    }

    /// Open a child of the innermost live span on this thread, or `None`
    /// when no span is active (the request was not sampled) — which makes
    /// deep instrumentation free on the unsampled path.
    pub fn span_follow(&self, kind: &'static str) -> Option<SpanGuard> {
        let (trace, parent) = current_span()?;
        Some(self.span_start(kind, trace, parent))
    }

    /// Count one root span skipped by the sampling knob.
    pub fn note_span_dropped(&self) {
        self.inner.spans_dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// Root spans skipped by sampling so far.
    pub fn spans_dropped(&self) -> u64 {
        self.inner.spans_dropped.load(Ordering::Relaxed)
    }

    /// Current time in microseconds under this registry's source.
    pub fn now_us(&self) -> u64 {
        self.inner.time.now_us()
    }

    /// A handle on this registry's clock, for spawning other recorders on
    /// the same epoch (cross-recorder span nesting needs a shared zero).
    pub fn time(&self) -> TimeSource {
        self.inner.time.clone()
    }

    /// Record one event into the flight recorder.
    pub fn emit(&self, ev: ObsEvent) {
        self.inner.recorder.lock().push(ev);
    }

    /// Record one latency/size sample into the named histogram.
    pub fn record(&self, name: &str, value: u64) {
        let mut hists = self.inner.hists.lock();
        match hists.get_mut(name) {
            Some(h) => h.record(value),
            None => {
                let mut h = LogHistogram::new();
                h.record(value);
                hists.insert(name.to_owned(), h);
            }
        }
    }

    /// Set the named gauge to `value` (last write wins). Same naming
    /// convention as histograms: `metric` or `metric:label`.
    pub fn set_gauge(&self, name: &str, value: u64) {
        let mut gauges = self.inner.gauges.lock();
        match gauges.get_mut(name) {
            Some(g) => *g = value,
            None => {
                gauges.insert(name.to_owned(), value);
            }
        }
    }

    /// Current value of the named gauge, if ever set.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.inner.gauges.lock().get(name).copied()
    }

    /// Sequence number the next recorded event will get; pair with
    /// [`events_since`](Self::events_since) for incremental draining.
    pub fn next_seq(&self) -> u64 {
        self.inner.recorder.lock().next_seq()
    }

    /// Clone out every retained event with sequence number `>= seq`.
    pub fn events_since(&self, seq: u64) -> Vec<(u64, ObsEvent)> {
        self.inner
            .recorder
            .lock()
            .events_since(seq)
            .map(|(s, ev)| (s, ev.clone()))
            .collect()
    }

    /// Retained flight-recorder contents as JSONL, oldest first.
    pub fn to_jsonl(&self) -> String {
        self.inner.recorder.lock().to_jsonl()
    }

    /// An immutable read-out of the current state.
    pub fn snapshot(&self) -> ObsSnapshot {
        let recorder = self.inner.recorder.lock();
        ObsSnapshot {
            dropped: recorder.dropped(),
            spans_dropped: self.spans_dropped(),
            events: recorder.iter().cloned().collect(),
            hists: self.inner.hists.lock().clone(),
            gauges: self.inner.gauges.lock().clone(),
        }
    }
}

impl std::fmt::Debug for ObsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let recorder = self.inner.recorder.lock();
        f.debug_struct("ObsRegistry")
            .field("events", &recorder.len())
            .field("dropped", &recorder.dropped())
            .field("hists", &self.inner.hists.lock().len())
            .finish()
    }
}

/// An immutable, mergeable read-out of one (or many, merged) registries.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ObsSnapshot {
    /// Events lost to ring overflow before this snapshot was taken.
    pub dropped: u64,
    /// Root spans skipped by the tracing sampling knob.
    pub spans_dropped: u64,
    /// Named histograms (`metric` or `metric:label`).
    pub hists: BTreeMap<String, LogHistogram>,
    /// Named gauges (`metric` or `metric:label`) — point-in-time values
    /// such as slab-class occupancy. Merging *sums* same-named gauges:
    /// each node reports its own absolute value, so the cluster-wide
    /// number is the total across nodes.
    pub gauges: BTreeMap<String, u64>,
    /// Retained flight-recorder events, oldest first.
    pub events: Vec<ObsEvent>,
}

impl ObsSnapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold `other` into `self`: histograms merge bucket-wise by name,
    /// events concatenate and re-sort by timestamp, drop counts add.
    pub fn merge(&mut self, other: &ObsSnapshot) {
        self.dropped += other.dropped;
        self.spans_dropped += other.spans_dropped;
        for (name, h) in &other.hists {
            match self.hists.get_mut(name) {
                Some(mine) => mine.merge(h),
                None => {
                    self.hists.insert(name.clone(), h.clone());
                }
            }
        }
        for (name, v) in &other.gauges {
            *self.gauges.entry(name.clone()).or_insert(0) += v;
        }
        self.events.extend(other.events.iter().cloned());
        self.events.sort_by_key(|ev| ev.at_us());
    }

    /// Look up a histogram by its full name (`metric` or `metric:label`).
    pub fn hist(&self, name: &str) -> Option<&LogHistogram> {
        self.hists.get(name)
    }

    /// Look up a gauge by its full name (`metric` or `metric:label`).
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.get(name).copied()
    }

    /// Event counts per kind tag.
    pub fn event_counts(&self) -> BTreeMap<&'static str, u64> {
        let mut counts = BTreeMap::new();
        for ev in &self.events {
            *counts.entry(ev.kind()).or_insert(0u64) += 1;
        }
        counts
    }

    /// Render the snapshot's events as JSONL, one per line, oldest first.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            out.push_str(&ev.to_json());
            out.push('\n');
        }
        out
    }

    /// Render as Prometheus-style exposition text: per-histogram
    /// count/sum/min/max and p50/p90/p99/p99.9 quantile gauges, plus
    /// per-kind event totals and the drop counter.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, h) in &self.hists {
            let (metric, label) = match name.split_once(':') {
                Some((m, l)) => (m, format!("{{op=\"{l}\"}}")),
                None => (name.as_str(), String::new()),
            };
            let q_label = |q: &str| -> String {
                match name.split_once(':') {
                    Some((_, l)) => format!("{{op=\"{l}\",quantile=\"{q}\"}}"),
                    None => format!("{{quantile=\"{q}\"}}"),
                }
            };
            let _ = writeln!(out, "ecc_{metric}_count{label} {}", h.count());
            let _ = writeln!(out, "ecc_{metric}_sum{label} {}", h.sum());
            let _ = writeln!(out, "ecc_{metric}_min{label} {}", h.min().unwrap_or(0));
            let _ = writeln!(out, "ecc_{metric}_max{label} {}", h.max().unwrap_or(0));
            let _ = writeln!(out, "ecc_{metric}{} {}", q_label("0.5"), h.p50());
            let _ = writeln!(out, "ecc_{metric}{} {}", q_label("0.9"), h.p90());
            let _ = writeln!(out, "ecc_{metric}{} {}", q_label("0.99"), h.p99());
            let _ = writeln!(out, "ecc_{metric}{} {}", q_label("0.999"), h.p999());
        }
        for (name, v) in &self.gauges {
            let (metric, label) = match name.split_once(':') {
                Some((m, l)) => (m, format!("{{op=\"{l}\"}}")),
                None => (name.as_str(), String::new()),
            };
            let _ = writeln!(out, "ecc_{metric}{label} {v}");
        }
        for (kind, n) in self.event_counts() {
            let _ = writeln!(out, "ecc_events_total{{type=\"{kind}\"}} {n}");
        }
        let _ = writeln!(out, "ecc_events_dropped_total {}", self.dropped);
        let _ = writeln!(out, "ecc_spans_dropped_total {}", self.spans_dropped);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_time_source_tracks_the_clock() {
        let clock = SimClock::new();
        let reg = ObsRegistry::new(TimeSource::Sim(clock.clone()));
        assert_eq!(reg.now_us(), 0);
        clock.advance_us(1234);
        assert_eq!(reg.now_us(), 1234);
    }

    #[test]
    fn clones_share_state() {
        let reg = ObsRegistry::new(TimeSource::real());
        let clone = reg.clone();
        clone.record("server_op_us:get", 42);
        clone.emit(ObsEvent::NodeAlloc { at_us: 1, node: 0 });
        let snap = reg.snapshot();
        assert_eq!(
            snap.hist("server_op_us:get").map(LogHistogram::count),
            Some(1)
        );
        assert_eq!(snap.events.len(), 1);
    }

    #[test]
    fn merge_folds_hists_and_events() {
        let mut a = ObsSnapshot::new();
        let mut b = ObsSnapshot::new();
        let mut h1 = LogHistogram::new();
        h1.record(10);
        let mut h2 = LogHistogram::new();
        h2.record(20);
        h2.record(30);
        a.hists.insert("x".into(), h1);
        b.hists.insert("x".into(), h2);
        a.events.push(ObsEvent::NodeAlloc { at_us: 5, node: 0 });
        b.events.push(ObsEvent::NodeAlloc { at_us: 2, node: 1 });
        b.dropped = 3;
        a.merge(&b);
        assert_eq!(a.dropped, 3);
        assert_eq!(a.hists["x"].count(), 3);
        let times: Vec<u64> = a.events.iter().map(ObsEvent::at_us).collect();
        assert_eq!(times, vec![2, 5]);
    }

    #[test]
    fn gauges_are_last_write_wins_and_merge_additively() {
        let reg = ObsRegistry::new(TimeSource::real());
        reg.set_gauge("slab_live_slots:64", 10);
        reg.set_gauge("slab_live_slots:64", 7);
        assert_eq!(reg.gauge("slab_live_slots:64"), Some(7));
        assert_eq!(reg.gauge("absent"), None);
        let mut a = reg.snapshot();
        let other = ObsRegistry::new(TimeSource::real());
        other.set_gauge("slab_live_slots:64", 5);
        other.set_gauge("slab_live_slots:80", 3);
        a.merge(&other.snapshot());
        // Per-node absolute values sum into the cluster-wide total.
        assert_eq!(a.gauge("slab_live_slots:64"), Some(12));
        assert_eq!(a.gauge("slab_live_slots:80"), Some(3));
        let text = a.render_prometheus();
        assert!(text.contains("ecc_slab_live_slots{op=\"64\"} 12"));
        assert!(text.contains("ecc_slab_live_slots{op=\"80\"} 3"));
    }

    #[test]
    fn prometheus_rendering_has_quantiles_and_event_totals() {
        let reg = ObsRegistry::new(TimeSource::real());
        for v in [10u64, 20, 3000] {
            reg.record("server_op_us:get", v);
        }
        reg.record("coord_fanout_us", 77);
        reg.emit(ObsEvent::BucketSplit {
            at_us: 1,
            node: 0,
            new_node: 1,
            bucket: 9,
        });
        let text = reg.snapshot().render_prometheus();
        assert!(text.contains("ecc_server_op_us_count{op=\"get\"} 3"));
        assert!(text.contains("ecc_server_op_us{op=\"get\",quantile=\"0.5\"}"));
        assert!(text.contains("ecc_server_op_us{op=\"get\",quantile=\"0.99\"}"));
        assert!(text.contains("ecc_coord_fanout_us_count 1"));
        assert!(text.contains("ecc_coord_fanout_us{quantile=\"0.999\"}"));
        assert!(text.contains("ecc_events_total{type=\"bucket_split\"} 1"));
        assert!(text.contains("ecc_events_dropped_total 0"));
    }
}
