//! Golden-file tests freezing the externally visible rendering of the
//! tracing layer: the JSONL form of `span_start`/`span_end` events and the
//! Prometheus exposition of a snapshot carrying them. These strings are
//! consumed by `cargo xtask trace`, CI artifact tooling, and any scrape
//! pipeline pointed at the exposition — changing them breaks deployed
//! readers the way changing a wire opcode would, so they are pinned
//! byte-for-byte alongside the 13 pinned opcodes (`crates/net/tests/prop.rs`).

use ecc_obs::{LogHistogram, ObsEvent, ObsSnapshot};

fn span_pair() -> (ObsEvent, ObsEvent) {
    (
        ObsEvent::SpanStart {
            at_us: 1500,
            trace: 281474976710656, // 1 << 48
            span: (5u64 << 40) | 7,
            parent: (5u64 << 40) | 2,
            kind: "srv_exec".to_string(),
            node: 5,
        },
        ObsEvent::SpanEnd {
            at_us: 1750,
            span: (5u64 << 40) | 7,
        },
    )
}

#[test]
fn span_jsonl_rendering_is_frozen() {
    let (start, end) = span_pair();
    assert_eq!(
        start.to_json(),
        "{\"type\":\"span_start\",\"at_us\":1500,\"trace\":281474976710656,\
         \"span\":5497558138887,\"parent\":5497558138882,\"kind\":\"srv_exec\",\"node\":5}"
    );
    assert_eq!(
        end.to_json(),
        "{\"type\":\"span_end\",\"at_us\":1750,\"span\":5497558138887}"
    );
    // And the frozen lines parse back to the exact events.
    assert_eq!(ObsEvent::from_json(&start.to_json()), Some(start));
    assert_eq!(ObsEvent::from_json(&end.to_json()), Some(end));
}

#[test]
fn span_prometheus_exposition_is_frozen() {
    let mut snap = ObsSnapshot::new();
    snap.spans_dropped = 42;
    let (start, end) = span_pair();
    snap.events.push(start);
    snap.events.push(end);
    let mut h = LogHistogram::new();
    h.record(100);
    snap.hists.insert("lock_wait_us:stripe".into(), h);
    assert_eq!(
        snap.render_prometheus(),
        "ecc_lock_wait_us_count{op=\"stripe\"} 1\n\
         ecc_lock_wait_us_sum{op=\"stripe\"} 100\n\
         ecc_lock_wait_us_min{op=\"stripe\"} 100\n\
         ecc_lock_wait_us_max{op=\"stripe\"} 100\n\
         ecc_lock_wait_us{op=\"stripe\",quantile=\"0.5\"} 100\n\
         ecc_lock_wait_us{op=\"stripe\",quantile=\"0.9\"} 100\n\
         ecc_lock_wait_us{op=\"stripe\",quantile=\"0.99\"} 100\n\
         ecc_lock_wait_us{op=\"stripe\",quantile=\"0.999\"} 100\n\
         ecc_events_total{type=\"span_end\"} 1\n\
         ecc_events_total{type=\"span_start\"} 1\n\
         ecc_events_dropped_total 0\n\
         ecc_spans_dropped_total 42\n"
    );
}

/// An unknown-to-old-readers event kind (a *newer* writer) degrades to a
/// skipped line, never an error — the contract that made adding the span
/// events a non-breaking trace-format change.
#[test]
fn older_readers_skip_span_lines_gracefully() {
    let (start, _) = span_pair();
    let jsonl = format!(
        "{}\n{}\n",
        start.to_json(),
        ObsEvent::NodeAlloc { at_us: 9, node: 1 }.to_json()
    );
    // A reader that only knows some kinds: filter_map(from_json) keeps
    // going past lines it cannot parse.
    let known: Vec<ObsEvent> = jsonl
        .lines()
        .filter_map(|l| {
            let ev = ObsEvent::from_json(l)?;
            (ev.kind() == "node_alloc").then_some(ev)
        })
        .collect();
    assert_eq!(known.len(), 1);
    // And a hypothetical future kind is skipped by *this* reader.
    assert_eq!(
        ObsEvent::from_json("{\"type\":\"span_link\",\"at_us\":1,\"span\":2}"),
        None
    );
}
