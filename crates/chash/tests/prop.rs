//! Property tests for the consistent-hash ring: the anti-disruption
//! guarantees of paper §II-A must hold for arbitrary bucket layouts.

use ecc_chash::HashRing;
use proptest::prelude::*;

/// Build a ring with the given bucket positions (deduped), nodes assigned
/// round-robin over `n_nodes`.
fn build_ring(r: u64, positions: &[u64], n_nodes: u32) -> HashRing<u32> {
    let mut ring = HashRing::new(r);
    for (i, &p) in positions.iter().enumerate() {
        let _ = ring.insert_bucket(p % r, (i as u32) % n_nodes.max(1));
    }
    ring
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn every_key_maps_to_exactly_one_bucket(
        r in 2u64..10_000,
        positions in proptest::collection::vec(any::<u64>(), 1..40),
        keys in proptest::collection::vec(any::<u64>(), 1..50),
    ) {
        let ring = build_ring(r, &positions, 4);
        for k in keys {
            let b = ring.bucket_for_key(k).expect("non-empty ring");
            let arc = ring.arc_of_bucket(b).unwrap();
            prop_assert!(arc.contains(k % r), "key {k} not in its bucket's arc");
        }
    }

    #[test]
    fn arcs_partition_the_whole_line(
        r in 2u64..512,
        positions in proptest::collection::vec(any::<u64>(), 1..20),
    ) {
        let ring = build_ring(r, &positions, 3);
        let mut owners = vec![0usize; r as usize];
        for (b, _) in ring.buckets() {
            let arc = ring.arc_of_bucket(b).unwrap();
            for pos in 0..r {
                if arc.contains(pos) {
                    owners[pos as usize] += 1;
                }
            }
        }
        prop_assert!(owners.iter().all(|&c| c == 1), "line not partitioned: {owners:?}");
    }

    #[test]
    fn arc_len_equals_span_cardinality(
        r in 2u64..2048,
        positions in proptest::collection::vec(any::<u64>(), 1..20),
    ) {
        let ring = build_ring(r, &positions, 3);
        let mut total = 0u64;
        for (b, _) in ring.buckets() {
            let arc = ring.arc_of_bucket(b).unwrap();
            let span_card: u64 = arc.spans().iter().map(|(lo, hi)| hi - lo + 1).sum();
            prop_assert_eq!(arc.len(), span_card);
            total += arc.len();
        }
        prop_assert_eq!(total, r, "arc lengths must sum to the line length");
    }

    #[test]
    fn insert_disrupts_only_the_new_arc(
        r in 4u64..4096,
        positions in proptest::collection::vec(any::<u64>(), 1..20),
        new_pos in any::<u64>(),
    ) {
        let mut ring = build_ring(r, &positions, 3);
        let new_pos = new_pos % r;
        prop_assume!(ring.node_of_bucket(new_pos).is_none());

        let before: Vec<u32> = (0..r).map(|k| *ring.node_for_key(k).unwrap()).collect();
        let arc = ring.relocation_on_insert(new_pos).unwrap();
        ring.insert_bucket(new_pos, 999).unwrap();

        for k in 0..r {
            if arc.contains(k) {
                prop_assert_eq!(ring.node_for_key(k), Some(&999));
            } else {
                prop_assert_eq!(*ring.node_for_key(k).unwrap(), before[k as usize]);
            }
        }
    }

    #[test]
    fn remove_disrupts_only_the_dead_arc(
        r in 4u64..4096,
        positions in proptest::collection::vec(any::<u64>(), 2..20),
        which in any::<prop::sample::Index>(),
    ) {
        let mut ring = build_ring(r, &positions, 3);
        prop_assume!(ring.len() >= 2);
        let bucket_list: Vec<u64> = ring.buckets().map(|(b, _)| b).collect();
        let victim = bucket_list[which.index(bucket_list.len())];

        let before: Vec<u32> = (0..r).map(|k| *ring.node_for_key(k).unwrap()).collect();
        let arc = ring.relocation_on_remove(victim).unwrap();
        let successor = ring.successor(victim).unwrap();
        let successor_node = *ring.node_of_bucket(successor).unwrap();
        ring.remove_bucket(victim).unwrap();

        for k in 0..r {
            if arc.contains(k) {
                prop_assert_eq!(*ring.node_for_key(k).unwrap(), successor_node);
            } else {
                prop_assert_eq!(*ring.node_for_key(k).unwrap(), before[k as usize]);
            }
        }
    }

    #[test]
    fn insert_then_remove_is_identity(
        r in 4u64..4096,
        positions in proptest::collection::vec(any::<u64>(), 1..20),
        new_pos in any::<u64>(),
    ) {
        let mut ring = build_ring(r, &positions, 3);
        let new_pos = new_pos % r;
        prop_assume!(ring.node_of_bucket(new_pos).is_none());

        let before: Vec<u32> = (0..r).map(|k| *ring.node_for_key(k).unwrap()).collect();
        ring.insert_bucket(new_pos, 999).unwrap();
        ring.remove_bucket(new_pos).unwrap();
        let after: Vec<u32> = (0..r).map(|k| *ring.node_for_key(k).unwrap()).collect();
        prop_assert_eq!(before, after);
    }

    #[test]
    fn predecessor_and_successor_are_inverse(
        r in 4u64..4096,
        positions in proptest::collection::vec(any::<u64>(), 1..20),
    ) {
        let ring = build_ring(r, &positions, 3);
        for (b, _) in ring.buckets() {
            let succ = ring.successor(b).unwrap();
            prop_assert_eq!(ring.predecessor(succ).unwrap(), b);
        }
    }
}
