//! Consistent hashing with explicit buckets, as used by the elastic cloud
//! cache to avoid *hash disruption* (paper §II-A, Figure 1).
//!
//! The hash line is the fixed integer range `[0, r)`. An ordered sequence of
//! buckets `B = (b_1, …, b_p)` lives on the line; each bucket is mapped to a
//! cache node through the `NodeMap`. A key `k` is first reduced by the
//! auxiliary hash `h'(k) = k mod r`, then assigned to the **closest upper
//! bucket**, wrapping circularly:
//!
//! ```text
//! h(k) = b_1                                  if h'(k) > b_p
//!        min { b_i ∈ B : b_i ≥ h'(k) }        otherwise
//! ```
//!
//! Because `h'` is the identity modulo `r`, *contiguous key ranges map to
//! contiguous arcs of the line* — which is what lets GBA-Insert split a
//! bucket at the median key and migrate exactly the lower half (a contiguous
//! B+-tree range) to another node.
//!
//! Adding a bucket relocates only the keys in `(b_prev, b_new]`; removing a
//! bucket hands its arc to the successor. Both relocation sets are exposed
//! so the cache can ship precisely the right records.
//!
//! # Example
//!
//! ```
//! use ecc_chash::{HashRing, Arc};
//!
//! let mut ring: HashRing<&'static str> = HashRing::new(1000);
//! ring.insert_bucket(499, "n1").unwrap();
//! ring.insert_bucket(999, "n2").unwrap();
//!
//! assert_eq!(ring.node_for_key(0), Some(&"n1"));
//! assert_eq!(ring.node_for_key(499), Some(&"n1"));
//! assert_eq!(ring.node_for_key(500), Some(&"n2"));
//!
//! // Splitting n2's arc at 750: keys in (499, 750] move to the new bucket.
//! let moved = ring.relocation_on_insert(750).unwrap();
//! assert_eq!(moved, Arc::contiguous(500, 750));
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

mod ring;

pub use ring::{Arc, HashRing, RingAuditError, RingError};
