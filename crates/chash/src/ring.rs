//! The hash-line implementation.

use std::collections::BTreeMap;
use std::fmt;

/// Errors returned by ring mutations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RingError {
    /// Bucket position outside `[0, r)`.
    PositionOutOfRange {
        /// The rejected position.
        position: u64,
        /// The hash-line range.
        r: u64,
    },
    /// A bucket already sits at this position.
    BucketOccupied {
        /// The occupied position.
        position: u64,
    },
    /// No bucket exists at this position.
    NoSuchBucket {
        /// The position that was looked up.
        position: u64,
    },
    /// Operation needs at least one bucket, but the ring is empty.
    EmptyRing,
}

impl fmt::Display for RingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::PositionOutOfRange { position, r } => {
                write!(f, "bucket position {position} outside hash line [0, {r})")
            }
            Self::BucketOccupied { position } => {
                write!(f, "bucket position {position} already occupied")
            }
            Self::NoSuchBucket { position } => write!(f, "no bucket at position {position}"),
            Self::EmptyRing => write!(f, "ring has no buckets"),
        }
    }
}

impl std::error::Error for RingError {}

/// A violated structural invariant found by [`HashRing::check_invariants`].
///
/// These mirror the paper's §II data-structure contract: `B` is a strictly
/// ordered bucket list on `[0, r)`, every bucket appears in `NodeMap`, and
/// the buckets' arcs partition the hash line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RingAuditError {
    /// A bucket position lies outside the hash line `[0, r)`.
    BucketOutOfRange {
        /// The offending bucket position.
        position: u64,
        /// The hash-line range.
        r: u64,
    },
    /// The arcs of all buckets do not sum to the full line length `r`.
    ArcsDoNotPartitionLine {
        /// Sum of all arc lengths.
        covered: u64,
        /// The hash-line range they must cover exactly once.
        r: u64,
    },
    /// A bucket's arc disagrees with the closest-upper-bucket rule.
    ArcOwnershipMismatch {
        /// The bucket whose arc was checked.
        bucket: u64,
        /// The line position that resolved to the wrong bucket.
        position: u64,
        /// The bucket that `bucket_for_position` actually returned.
        resolved: Option<u64>,
    },
    /// A bucket has no node mapping (cannot happen through the public API;
    /// guards future refactors that split `B` from `NodeMap`).
    UnmappedBucket {
        /// The bucket without a node.
        position: u64,
    },
}

impl fmt::Display for RingAuditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BucketOutOfRange { position, r } => {
                write!(f, "bucket {position} outside hash line [0, {r})")
            }
            Self::ArcsDoNotPartitionLine { covered, r } => {
                write!(f, "bucket arcs cover {covered} positions, line has {r}")
            }
            Self::ArcOwnershipMismatch {
                bucket,
                position,
                resolved,
            } => write!(
                f,
                "arc of bucket {bucket} claims position {position}, but h resolves it to {resolved:?}"
            ),
            Self::UnmappedBucket { position } => {
                write!(f, "bucket {position} missing from NodeMap")
            }
        }
    }
}

impl std::error::Error for RingAuditError {}

/// A (possibly wrapping) arc of the hash line, expressed as inclusive
/// position bounds. The arc owned by bucket `b_i` is `(b_{i-1}, b_i]`; for
/// the first bucket that wraps around the top of the line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arc {
    /// Every position in `[lo, hi]`.
    Contiguous {
        /// Inclusive lower bound.
        lo: u64,
        /// Inclusive upper bound.
        hi: u64,
    },
    /// The wrap-around arc `[lo, r) ∪ [0, hi]`.
    Wrapping {
        /// Inclusive start of the upper span.
        lo: u64,
        /// Inclusive end of the lower span.
        hi: u64,
        /// The hash-line range.
        r: u64,
    },
    /// The entire line (single-bucket ring).
    Full {
        /// The hash-line range.
        r: u64,
    },
}

impl Arc {
    /// Convenience constructor for a contiguous arc.
    pub fn contiguous(lo: u64, hi: u64) -> Self {
        Arc::Contiguous { lo, hi }
    }

    /// Whether `pos` falls inside this arc.
    pub fn contains(&self, pos: u64) -> bool {
        match *self {
            Arc::Contiguous { lo, hi } => lo <= pos && pos <= hi,
            Arc::Wrapping { lo, hi, r } => (lo <= pos && pos < r) || pos <= hi,
            Arc::Full { r } => pos < r,
        }
    }

    /// Number of positions covered.
    pub fn len(&self) -> u64 {
        match *self {
            Arc::Contiguous { lo, hi } => hi - lo + 1,
            Arc::Wrapping { lo, hi, r } => (r - lo) + hi + 1,
            Arc::Full { r } => r,
        }
    }

    /// Whether the arc covers no positions (never true for valid arcs).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The arc as at most two `(lo, hi)` inclusive spans in key order —
    /// the shape a B+-tree sweep consumes.
    pub fn spans(&self) -> Vec<(u64, u64)> {
        match *self {
            Arc::Contiguous { lo, hi } => vec![(lo, hi)],
            Arc::Wrapping { lo, hi, r } if lo < r => vec![(0, hi), (lo, r - 1)],
            // Degenerate wrap (upper span empty): just the low end.
            Arc::Wrapping { hi, .. } => vec![(0, hi)],
            Arc::Full { r } => vec![(0, r - 1)],
        }
    }

    /// Normalize a `(pred, position]` arc: a "wrap" whose upper span is
    /// empty (predecessor at `r - 1`) is really contiguous `[0, position]`.
    fn between(pred: u64, position: u64, r: u64) -> Self {
        if pred < position {
            Arc::Contiguous {
                lo: pred + 1,
                hi: position,
            }
        } else if pred == r - 1 {
            Arc::Contiguous {
                lo: 0,
                hi: position,
            }
        } else {
            Arc::Wrapping {
                lo: pred + 1,
                hi: position,
                r,
            }
        }
    }
}

/// The consistent-hash ring: ordered buckets on `[0, r)`, each mapped to a
/// node of type `N`. This combines the paper's `B` (bucket list) and
/// `NodeMap` (bucket → node relation) in one structure.
#[derive(Debug, Clone)]
pub struct HashRing<N> {
    r: u64,
    buckets: BTreeMap<u64, N>,
}

impl<N: Clone + Eq> HashRing<N> {
    /// Create an empty ring over the hash line `[0, r)`.
    ///
    /// # Panics
    ///
    /// Panics if `r == 0`.
    pub fn new(r: u64) -> Self {
        assert!(r > 0, "hash line range must be positive");
        Self {
            r,
            buckets: BTreeMap::new(),
        }
    }

    /// The hash line range `r`.
    #[inline]
    pub fn range(&self) -> u64 {
        self.r
    }

    /// Number of buckets `p`.
    #[inline]
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// Whether the ring has no buckets.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// The auxiliary hash `h'(k) = k mod r`.
    #[inline]
    pub fn aux_hash(&self, key: u64) -> u64 {
        key % self.r
    }

    /// The consistent hash `h(k)`: position of the bucket owning `key`.
    /// `None` on an empty ring.
    pub fn bucket_for_key(&self, key: u64) -> Option<u64> {
        self.bucket_for_position(self.aux_hash(key))
    }

    /// Closest upper bucket for a raw line position, wrapping to `b_1`.
    pub fn bucket_for_position(&self, pos: u64) -> Option<u64> {
        self.buckets
            .range(pos..)
            .next()
            .or_else(|| self.buckets.iter().next())
            .map(|(&b, _)| b)
    }

    /// The node owning `key`. `None` on an empty ring.
    pub fn node_for_key(&self, key: u64) -> Option<&N> {
        self.bucket_for_key(key).map(|b| &self.buckets[&b])
    }

    /// The node mapped to the bucket at `position`.
    pub fn node_of_bucket(&self, position: u64) -> Option<&N> {
        self.buckets.get(&position)
    }

    /// Insert a bucket at `position` mapped to `node`.
    pub fn insert_bucket(&mut self, position: u64, node: N) -> Result<(), RingError> {
        if position >= self.r {
            return Err(RingError::PositionOutOfRange {
                position,
                r: self.r,
            });
        }
        if self.buckets.contains_key(&position) {
            return Err(RingError::BucketOccupied { position });
        }
        self.buckets.insert(position, node);
        #[cfg(debug_assertions)]
        self.validate();
        Ok(())
    }

    /// Remove the bucket at `position`, returning its node.
    pub fn remove_bucket(&mut self, position: u64) -> Result<N, RingError> {
        let node = self
            .buckets
            .remove(&position)
            .ok_or(RingError::NoSuchBucket { position })?;
        #[cfg(debug_assertions)]
        self.validate();
        Ok(node)
    }

    /// Re-map an existing bucket to a different node (used when merging two
    /// cache nodes: the dying node's buckets are pointed at the survivor).
    pub fn remap_bucket(&mut self, position: u64, node: N) -> Result<N, RingError> {
        let prev = match self.buckets.get_mut(&position) {
            Some(slot) => std::mem::replace(slot, node),
            None => return Err(RingError::NoSuchBucket { position }),
        };
        #[cfg(debug_assertions)]
        self.validate();
        Ok(prev)
    }

    /// Iterate over `(position, node)` pairs in line order (`b_1 … b_p`).
    pub fn buckets(&self) -> impl Iterator<Item = (u64, &N)> {
        self.buckets.iter().map(|(&b, n)| (b, n))
    }

    /// All bucket positions mapped to `node`, in line order.
    pub fn buckets_of_node(&self, node: &N) -> Vec<u64> {
        self.buckets
            .iter()
            .filter(|(_, n)| *n == node)
            .map(|(&b, _)| b)
            .collect()
    }

    /// Distinct nodes referenced by at least one bucket.
    pub fn nodes(&self) -> Vec<N> {
        let mut out: Vec<N> = Vec::new();
        for n in self.buckets.values() {
            if !out.contains(n) {
                out.push(n.clone());
            }
        }
        out
    }

    /// The predecessor bucket of `position` on the circular line (the bucket
    /// whose arc ends just before this one begins).
    pub fn predecessor(&self, position: u64) -> Result<u64, RingError> {
        if !self.buckets.contains_key(&position) {
            return Err(RingError::NoSuchBucket { position });
        }
        self.buckets
            .range(..position)
            .next_back()
            .or_else(|| self.buckets.iter().next_back())
            .map(|(&b, _)| b)
            .ok_or(RingError::EmptyRing)
    }

    /// The successor bucket of `position` on the circular line.
    pub fn successor(&self, position: u64) -> Result<u64, RingError> {
        if !self.buckets.contains_key(&position) {
            return Err(RingError::NoSuchBucket { position });
        }
        self.buckets
            .range(position + 1..)
            .next()
            .or_else(|| self.buckets.iter().next())
            .map(|(&b, _)| b)
            .ok_or(RingError::EmptyRing)
    }

    /// The arc of the line owned by the bucket at `position`:
    /// `(predecessor, position]`, wrapping as needed.
    pub fn arc_of_bucket(&self, position: u64) -> Result<Arc, RingError> {
        let pred = self.predecessor(position)?;
        if self.buckets.len() == 1 {
            return Ok(Arc::Full { r: self.r });
        }
        Ok(Arc::between(pred, position, self.r))
    }

    /// The lowest position of a bucket's arc — the paper's `min(b_max)`
    /// (Algorithm 1, line 12). For the wrap-around bucket this is the start
    /// of its *upper* span.
    pub fn arc_start(&self, position: u64) -> Result<u64, RingError> {
        match self.arc_of_bucket(position)? {
            Arc::Contiguous { lo, .. } => Ok(lo),
            Arc::Wrapping { lo, .. } => Ok(lo),
            Arc::Full { .. } => Ok((position + 1) % self.r),
        }
    }

    /// The keys (as an arc of the line) that would move to a new bucket at
    /// `position`, i.e. `(b_prev, position]`. Fails if the position is
    /// occupied or out of range; on an empty ring the new bucket would own
    /// the full line.
    pub fn relocation_on_insert(&self, position: u64) -> Result<Arc, RingError> {
        if position >= self.r {
            return Err(RingError::PositionOutOfRange {
                position,
                r: self.r,
            });
        }
        if self.buckets.contains_key(&position) {
            return Err(RingError::BucketOccupied { position });
        }
        if self.buckets.is_empty() {
            return Ok(Arc::Full { r: self.r });
        }
        let pred = self
            .buckets
            .range(..position)
            .next_back()
            .or_else(|| self.buckets.iter().next_back())
            .map(|(&b, _)| b)
            .ok_or(RingError::EmptyRing)?;
        Ok(Arc::between(pred, position, self.r))
    }

    /// The keys that move to the successor bucket when the bucket at
    /// `position` is removed (exactly that bucket's arc).
    pub fn relocation_on_remove(&self, position: u64) -> Result<Arc, RingError> {
        self.arc_of_bucket(position)
    }

    /// Audit the ring's structural invariants, mirroring
    /// `BPlusTree::validate`:
    ///
    /// 1. every bucket position lies on the hash line `[0, r)` (strict
    ///    ordering is guaranteed by the `BTreeMap` key order),
    /// 2. every bucket maps to a node (`NodeMap` is total over `B`),
    /// 3. the buckets' arcs partition the line: they are pairwise disjoint,
    ///    jointly exhaustive (lengths sum to `r`), and each arc's endpoints
    ///    resolve to its own bucket under the closest-upper-bucket rule.
    ///
    /// Returns the first violation found; `Ok(())` on a healthy ring (an
    /// empty ring is trivially healthy).
    pub fn check_invariants(&self) -> Result<(), RingAuditError> {
        let mut covered = 0u64;
        for &b in self.buckets.keys() {
            if b >= self.r {
                return Err(RingAuditError::BucketOutOfRange {
                    position: b,
                    r: self.r,
                });
            }
            // NodeMap totality is structural in this merged representation;
            // keep the check explicit so a future split of B from NodeMap
            // cannot silently drop it.
            if !self.buckets.contains_key(&b) {
                return Err(RingAuditError::UnmappedBucket { position: b });
            }
            let arc = self
                .arc_of_bucket(b)
                .map_err(|_| RingAuditError::UnmappedBucket { position: b })?;
            covered += arc.len();
            // Endpoint ownership: the bucket position itself, the arc start,
            // and the position just past the arc must resolve per the
            // circular closest-upper-bucket rule.
            for pos in [b, self.arc_start(b).unwrap_or(b)] {
                let resolved = self.bucket_for_position(pos);
                if resolved != Some(b) {
                    return Err(RingAuditError::ArcOwnershipMismatch {
                        bucket: b,
                        position: pos,
                        resolved,
                    });
                }
            }
            let past = (b + 1) % self.r;
            if let Some(resolved) = self.bucket_for_position(past) {
                if resolved == b && self.buckets.len() > 1 {
                    return Err(RingAuditError::ArcOwnershipMismatch {
                        bucket: b,
                        position: past,
                        resolved: Some(resolved),
                    });
                }
            }
        }
        if !self.buckets.is_empty() && covered != self.r {
            return Err(RingAuditError::ArcsDoNotPartitionLine { covered, r: self.r });
        }
        Ok(())
    }

    /// Panicking wrapper over [`Self::check_invariants`], for tests and
    /// `debug_assert!` hooks.
    ///
    /// # Panics
    ///
    /// Panics with the violation's description if any invariant is broken.
    pub fn validate(&self) {
        if let Err(e) = self.check_invariants() {
            panic!("ring invariant violated: {e}"); // xtask: allow(no-panic) — validate() is the panicking audit wrapper
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_node_ring() -> HashRing<u32> {
        // Mirrors Figure 1 (top): five buckets over two nodes.
        let mut ring = HashRing::new(100);
        ring.insert_bucket(10, 1).unwrap();
        ring.insert_bucket(30, 1).unwrap();
        ring.insert_bucket(50, 2).unwrap();
        ring.insert_bucket(70, 2).unwrap();
        ring.insert_bucket(90, 2).unwrap();
        ring
    }

    #[test]
    fn closest_upper_bucket_rule() {
        let ring = two_node_ring();
        assert_eq!(ring.bucket_for_key(0), Some(10));
        assert_eq!(ring.bucket_for_key(10), Some(10));
        assert_eq!(ring.bucket_for_key(11), Some(30));
        assert_eq!(ring.bucket_for_key(69), Some(70));
        assert_eq!(ring.bucket_for_key(90), Some(90));
    }

    #[test]
    fn keys_above_last_bucket_wrap_to_first() {
        let ring = two_node_ring();
        // h'(k) in (90, 99] wraps to b_1 = 10, node 1 (paper's circular rule).
        assert_eq!(ring.bucket_for_key(91), Some(10));
        assert_eq!(ring.bucket_for_key(99), Some(10));
        assert_eq!(ring.node_for_key(95), Some(&1));
    }

    #[test]
    fn aux_hash_is_mod_r() {
        let ring = two_node_ring();
        assert_eq!(ring.aux_hash(100), 0);
        assert_eq!(ring.aux_hash(123), 23);
        assert_eq!(ring.bucket_for_key(123), Some(30));
    }

    #[test]
    fn empty_ring_maps_nothing() {
        let ring: HashRing<u32> = HashRing::new(64);
        assert_eq!(ring.bucket_for_key(5), None);
        assert_eq!(ring.node_for_key(5), None);
        assert!(ring.is_empty());
    }

    #[test]
    fn insert_rejects_bad_positions() {
        let mut ring = two_node_ring();
        assert_eq!(
            ring.insert_bucket(100, 3),
            Err(RingError::PositionOutOfRange {
                position: 100,
                r: 100
            })
        );
        assert_eq!(
            ring.insert_bucket(50, 3),
            Err(RingError::BucketOccupied { position: 50 })
        );
    }

    #[test]
    fn figure1_bottom_split_scenario() {
        // Figure 1 (bottom): adding n3 at b6 = r/2 relocates exactly the
        // keys in (b3, b6] from n2 to n3.
        let mut ring = two_node_ring();
        let moved = ring.relocation_on_insert(60).unwrap();
        assert_eq!(moved, Arc::contiguous(51, 60));
        ring.insert_bucket(60, 3).unwrap();
        for k in 51..=60 {
            assert_eq!(ring.node_for_key(k), Some(&3));
        }
        assert_eq!(ring.node_for_key(50), Some(&2));
        assert_eq!(ring.node_for_key(61), Some(&2));
    }

    #[test]
    fn relocation_on_insert_wrapping() {
        let ring = two_node_ring();
        // New bucket at 5: predecessor is 90, so the arc wraps.
        let moved = ring.relocation_on_insert(5).unwrap();
        assert_eq!(
            moved,
            Arc::Wrapping {
                lo: 91,
                hi: 5,
                r: 100
            }
        );
        assert_eq!(moved.spans(), vec![(0, 5), (91, 99)]);
        assert_eq!(moved.len(), 15);
    }

    #[test]
    fn arcs_partition_the_line() {
        let ring = two_node_ring();
        let mut covered = [false; 100];
        for (b, _) in ring.buckets() {
            let arc = ring.arc_of_bucket(b).unwrap();
            for pos in 0..100 {
                if arc.contains(pos) {
                    assert!(!covered[pos as usize], "position {pos} double-owned");
                    covered[pos as usize] = true;
                }
            }
        }
        assert!(covered.iter().all(|&c| c), "line not fully covered");
    }

    #[test]
    fn single_bucket_owns_everything() {
        let mut ring: HashRing<u32> = HashRing::new(50);
        ring.insert_bucket(20, 1).unwrap();
        assert_eq!(ring.arc_of_bucket(20), Ok(Arc::Full { r: 50 }));
        for k in 0..50 {
            assert_eq!(ring.node_for_key(k), Some(&1));
        }
        assert_eq!(ring.predecessor(20), Ok(20));
        assert_eq!(ring.successor(20), Ok(20));
    }

    #[test]
    fn predecessor_successor_circularity() {
        let ring = two_node_ring();
        assert_eq!(ring.predecessor(10), Ok(90));
        assert_eq!(ring.successor(90), Ok(10));
        assert_eq!(ring.predecessor(50), Ok(30));
        assert_eq!(ring.successor(50), Ok(70));
        assert_eq!(
            ring.predecessor(11),
            Err(RingError::NoSuchBucket { position: 11 })
        );
    }

    #[test]
    fn remove_bucket_hands_arc_to_successor() {
        let mut ring = two_node_ring();
        let arc = ring.relocation_on_remove(50).unwrap();
        assert_eq!(arc, Arc::contiguous(31, 50));
        ring.remove_bucket(50).unwrap();
        // Those keys now belong to bucket 70 (still node 2 here).
        for k in 31..=50 {
            assert_eq!(ring.bucket_for_key(k), Some(70));
        }
    }

    #[test]
    fn remap_bucket_changes_owner() {
        let mut ring = two_node_ring();
        assert_eq!(ring.remap_bucket(50, 9), Ok(2));
        assert_eq!(ring.node_for_key(40), Some(&9));
        assert_eq!(
            ring.remap_bucket(51, 9),
            Err(RingError::NoSuchBucket { position: 51 })
        );
    }

    #[test]
    fn buckets_of_node_and_nodes() {
        let ring = two_node_ring();
        assert_eq!(ring.buckets_of_node(&1), vec![10, 30]);
        assert_eq!(ring.buckets_of_node(&2), vec![50, 70, 90]);
        assert_eq!(ring.nodes(), vec![1, 2]);
    }

    #[test]
    fn arc_start_matches_min_b_max_semantics() {
        let ring = two_node_ring();
        assert_eq!(ring.arc_start(50), Ok(31));
        assert_eq!(ring.arc_start(10), Ok(91)); // wrap bucket: upper span start
    }

    #[test]
    fn arc_spans_cover_exactly_the_arc() {
        let arc = Arc::Wrapping {
            lo: 91,
            hi: 5,
            r: 100,
        };
        let mut count = 0u64;
        for (lo, hi) in arc.spans() {
            for p in lo..=hi {
                assert!(arc.contains(p));
                count += 1;
            }
        }
        assert_eq!(count, arc.len());
    }

    #[test]
    fn adding_bucket_only_disrupts_its_arc() {
        // The core consistent-hashing claim: all keys outside (b_prev, b_new]
        // keep their node assignment.
        let mut ring = two_node_ring();
        let before: Vec<Option<u32>> = (0..100).map(|k| ring.node_for_key(k).copied()).collect();
        let arc = ring.relocation_on_insert(42).unwrap();
        ring.insert_bucket(42, 7).unwrap();
        for k in 0..100u64 {
            if arc.contains(k) {
                assert_eq!(ring.node_for_key(k), Some(&7));
            } else {
                assert_eq!(ring.node_for_key(k).copied(), before[k as usize]);
            }
        }
    }
}
