//! Golden-file test for `results/fig5.csv` regeneration (ISSUE 7
//! satellite c): the CSV comes out of the same `fig5_header`/`fig5_rows`
//! code path the binary uses, at a small fixed scale, and must match the
//! committed golden byte for byte — column order, float formatting and
//! the underlying simulation are all pinned, so scenario reruns are
//! diffable.
//!
//! To bless a new golden after an intentional change:
//!
//! ```text
//! ECC_BLESS_GOLDEN=1 cargo test -p ecc-bench --test fig5_golden
//! ```

use ecc_bench::{csv_text, fig5_header, fig5_rows, run_eviction_experiment, PaperService};

const GOLDEN_PATH: &str = "tests/golden/fig5_small.csv";

/// Small-scale fig5 run: two windows, 40 steps, the binary's seeds.
fn regenerate() -> String {
    let service = PaperService::new(2010);
    let windows = [50usize, 100];
    let steps = 40u64;
    let all: Vec<_> = windows
        .iter()
        .map(|&m| (m, run_eviction_experiment(m, 0.99, steps, 7, &service)))
        .collect();
    csv_text(&fig5_header(&windows), &fig5_rows(&all, steps, 4)).expect("well-formed rows")
}

#[test]
fn fig5_csv_regeneration_matches_the_golden_file() {
    let fresh = regenerate();
    if std::env::var_os("ECC_BLESS_GOLDEN").is_some() {
        std::fs::create_dir_all("tests/golden").expect("golden dir");
        std::fs::write(GOLDEN_PATH, &fresh).expect("bless golden");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("missing golden file; bless with ECC_BLESS_GOLDEN=1");
    assert_eq!(
        fresh, golden,
        "fig5 CSV drifted from the golden; if intentional, re-bless \
         with ECC_BLESS_GOLDEN=1 and commit the diff"
    );
}

#[test]
fn fig5_header_tracks_the_window_sweep() {
    assert_eq!(
        fig5_header(&[50, 100, 200, 400]),
        "step,m50_speedup,m50_nodes,m100_speedup,m100_nodes,\
         m200_speedup,m200_nodes,m400_speedup,m400_nodes"
    );
}

#[test]
fn csv_text_rejects_arity_mismatches() {
    let bad = vec![vec!["1".to_string(), "2".to_string()]];
    assert!(csv_text("a,b,c", &bad).is_err());
    let good = vec![vec!["1".to_string(), "2".to_string(), "3".to_string()]];
    assert_eq!(csv_text("a,b,c", &good).unwrap(), "a,b,c\n1,2,3\n");
}
