//! Criterion microbenchmarks backing the paper's §III complexity analysis
//! (experiment A3 in DESIGN.md):
//!
//! * `h(k)` is O(log p) — ring lookup across bucket counts,
//! * B+-tree search is O(log ||n||), the sweep is linear in swept records
//!   (`T_migrate = log ||n|| + |n|/2 · (T_net + 1)`),
//! * λ scoring is O(m) per key,
//! * spatial linearization and LRU bookkeeping are O(1).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ecc_bptree::BPlusTree;
use ecc_chash::HashRing;
use ecc_core::{Lru, SlidingWindow};
use ecc_spatial::{hilbert, morton};

fn bench_ring_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("ring_lookup_h_of_k");
    for p in [4u64, 16, 64, 256, 1024, 4096] {
        let mut ring: HashRing<u32> = HashRing::new(1 << 20);
        for i in 0..p {
            ring.insert_bucket(i * ((1 << 20) / p) + 7, (i % 16) as u32)
                .unwrap();
        }
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, _| {
            let mut k = 0u64;
            b.iter(|| {
                k = k.wrapping_add(0x9E3779B9);
                black_box(ring.bucket_for_key(k % (1 << 20)))
            });
        });
    }
    group.finish();
}

fn bench_btree_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("btree");
    for n in [1_000u64, 10_000, 100_000] {
        let mut tree: BPlusTree<u64, u64> = BPlusTree::new(64);
        for i in 0..n {
            tree.insert((i * 2654435761) % (n * 4), i);
        }
        group.bench_with_input(BenchmarkId::new("search", n), &n, |b, &n| {
            let mut k = 0u64;
            b.iter(|| {
                k = k.wrapping_add(0x9E3779B9);
                black_box(tree.get(&(k % (n * 4))))
            });
        });
        group.bench_with_input(BenchmarkId::new("insert_remove", n), &n, |b, &n| {
            let mut k = n * 4;
            b.iter(|| {
                k += 1;
                tree.insert(k, k);
                tree.remove(&k);
            });
        });
    }
    group.finish();
}

fn bench_btree_sweep(c: &mut Criterion) {
    // The sweep phase of Algorithm 2: linear in swept records.
    let mut group = c.benchmark_group("btree_sweep_half");
    for n in [1_000u64, 10_000, 100_000] {
        group.throughput(Throughput::Elements(n / 2));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter_batched(
                || {
                    let mut tree: BPlusTree<u64, u64> = BPlusTree::new(64);
                    for i in 0..n {
                        tree.insert(i, i);
                    }
                    tree
                },
                |mut tree| black_box(tree.drain_range(&0, &(n / 2))),
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_window_lambda(c: &mut Criterion) {
    let mut group = c.benchmark_group("window_lambda");
    for m in [50usize, 100, 200, 400] {
        let mut w = SlidingWindow::new(m, 0.99, 0.0);
        for s in 0..m as u64 {
            for q in 0..50u64 {
                w.note_query((s * 31 + q * 17) % 4096);
            }
            w.end_slice();
        }
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            let mut k = 0u64;
            b.iter(|| {
                k = (k + 1) % 4096;
                black_box(w.lambda(k))
            });
        });
    }
    group.finish();
}

fn bench_spatial(c: &mut Criterion) {
    let mut group = c.benchmark_group("spatial");
    group.bench_function("morton_encode2", |b| {
        let mut x = 0u32;
        b.iter(|| {
            x = x.wrapping_add(2654435761);
            black_box(morton::encode2(x, x.rotate_left(13)))
        });
    });
    group.bench_function("hilbert_xy_to_d_order16", |b| {
        let mut x = 0u32;
        b.iter(|| {
            x = x.wrapping_add(40503) & 0xFFFF;
            black_box(hilbert::xy_to_d(16, x, x.rotate_left(5) & 0xFFFF))
        });
    });
    group.finish();
}

fn bench_lru(c: &mut Criterion) {
    let mut group = c.benchmark_group("lru");
    group.bench_function("get_touch_64k", |b| {
        let mut lru: Lru<u64, u64> = Lru::new();
        for k in 0..65_536u64 {
            lru.insert(k, k);
        }
        let mut k = 0u64;
        b.iter(|| {
            k = (k.wrapping_add(0x9E3779B9)) % 65_536;
            black_box(lru.get(&k).copied())
        });
    });
    group.bench_function("insert_evict_cycle", |b| {
        let mut lru: Lru<u64, u64> = Lru::new();
        for k in 0..4096u64 {
            lru.insert(k, k);
        }
        let mut k = 4096u64;
        b.iter(|| {
            k += 1;
            lru.insert(k, k);
            black_box(lru.pop_lru())
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_ring_lookup,
    bench_btree_ops,
    bench_btree_sweep,
    bench_window_lambda,
    bench_spatial,
    bench_lru
);
criterion_main!(benches);
