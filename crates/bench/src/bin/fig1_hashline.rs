//! Figure 1: consistent hashing on the bucket line, before and after a
//! node acquisition.
//!
//! Reproduces the paper's worked example: two nodes behind five buckets;
//! a new node `n3` is inserted at `b6 = r/2` and only the keys in
//! `(b3, b6]` relocate.

use ecc_chash::HashRing;

fn render(ring: &HashRing<&'static str>, r: u64) {
    let cols = 64usize;
    let mut line = vec!['-'; cols];
    let mut labels = vec![' '; cols + 8];
    for (pos, node) in ring.buckets() {
        let c = (pos as usize * (cols - 1)) / (r as usize - 1);
        line[c] = '|';
        let name = node.to_string();
        for (i, ch) in name.chars().enumerate() {
            if c + i < labels.len() {
                labels[c + i] = ch;
            }
        }
    }
    println!("  0 {} {}", line.iter().collect::<String>(), r - 1);
    println!("    {}", labels.iter().collect::<String>());
}

fn main() {
    let r = 1000u64;
    let mut ring: HashRing<&'static str> = HashRing::new(r);
    // Five buckets over two nodes, as in Figure 1 (top).
    for (pos, node) in [
        (100, "n1"),
        (300, "n1"),
        (500, "n2"),
        (700, "n2"),
        (900, "n2"),
    ] {
        ring.insert_bucket(pos, node).unwrap();
    }

    println!("Figure 1 (top): two nodes, five buckets on the hash line [0, {r})\n");
    render(&ring, r);
    println!();
    for key in [42u64, 250, 499, 620, 901, 999] {
        let b = ring.bucket_for_key(key).unwrap();
        println!(
            "  h'(k)={key:>4}  ->  closest upper bucket b@{b:<4} ->  {}",
            ring.node_for_key(key).unwrap()
        );
    }

    let b6 = 600; // between b3 = 500 and b4 = 700, as in the paper's figure
    println!("\nAcquiring n3 at b6 = {b6}:");
    let arc = ring.relocation_on_insert(b6).unwrap();
    println!(
        "  relocation set: exactly the keys in (b3, b6] = {:?} ({} positions) — no global rehash",
        arc.spans(),
        arc.len()
    );
    ring.insert_bucket(b6, "n3").unwrap();

    println!("\nFigure 1 (bottom): after the acquisition\n");
    render(&ring, r);
    println!();
    for key in [42u64, 250, 499, 501, 620, 901] {
        println!("  h'(k)={key:>4}  ->  {}", ring.node_for_key(key).unwrap());
    }
    let moved: u64 = arc.len();
    println!(
        "\nhash disruption: {moved}/{r} keys moved ({:.1} %); static `k mod n` would move ~{:.0} %",
        100.0 * moved as f64 / r as f64,
        100.0 * (1.0 - 1.0 / 3.0)
    );
}
