//! Figure 7: data-reuse behaviour under different decay values
//! (α = 0.99 / 0.98 / 0.95 / 0.93) at window m = 100.
//!
//! Paper observations: smaller α evicts more aggressively (a record must
//! be re-queried more to stay), the cache grows more slowly — but total
//! hits barely change, so a small α is a cost lever with little
//! performance downside. Note the exponential sensitivity of α.
//!
//! ```text
//! cargo run --release -p ecc-bench --bin fig7_decay
//! ```

use ecc_bench::{
    run_eviction_experiment_with_threshold, scale_arg, write_csv, PaperService, StepRow,
};

fn main() {
    let scale = scale_arg();
    let steps: u64 = ((600f64 * scale) as u64).max(60);
    println!("Figure 7: decay sweep at m = 100, {steps} time steps (scale {scale})\n");

    let service = PaperService::new(2010);
    let alphas = [0.99f64, 0.98, 0.95, 0.93];
    // T_λ is held at the α = 0.99 baseline while α varies; with the
    // α-dependent baseline threshold the decay cancels out of the
    // eviction decision and Figure 7 would be flat.
    let threshold = 0.99f64.powi(99);
    println!("fixed T_λ = 0.99^99 = {threshold:.4} across all α\n");
    let mut all: Vec<(f64, Vec<StepRow>)> = Vec::new();
    println!(
        "{:>6} {:>12} {:>12} {:>11} {:>10} {:>10}",
        "alpha", "total hits", "evictions", "max nodes", "avg nodes", "T_lambda"
    );
    for &alpha in &alphas {
        let rows =
            run_eviction_experiment_with_threshold(100, alpha, Some(threshold), steps, 7, &service);
        let hits: u64 = rows.iter().map(|r| r.hits).sum();
        let evictions: u64 = rows.iter().map(|r| r.evictions).sum();
        let max_nodes = rows.iter().map(|r| r.nodes).max().unwrap_or(0);
        let avg_nodes = rows.iter().map(|r| r.nodes as f64).sum::<f64>() / rows.len() as f64;
        println!(
            "{alpha:>6.2} {hits:>12} {evictions:>12} {max_nodes:>11} {avg_nodes:>10.2} {threshold:>10.4}"
        );
        all.push((alpha, rows));
    }

    println!("\nper-step reuse (hits), every 25 steps:");
    println!(
        "{:>5}  {:>9} {:>9} {:>9} {:>9}",
        "step", "α=0.99", "α=0.98", "α=0.95", "α=0.93"
    );
    let report_every = (steps / 24).max(1);
    let mut rows_csv: Vec<Vec<String>> = Vec::new();
    for i in (0..steps as usize).step_by(report_every as usize) {
        let mut line = format!("{:>5}", i + 1);
        let mut csv = vec![(i + 1).to_string()];
        for (_, rows) in &all {
            line.push_str(&format!("  {:>8}", rows[i].hits));
            csv.push(rows[i].hits.to_string());
            csv.push(rows[i].evictions.to_string());
            csv.push(rows[i].nodes.to_string());
        }
        println!("{line}");
        rows_csv.push(csv);
    }
    let csv_path = write_csv(
        "fig7.csv",
        "step,a99_hits,a99_evictions,a99_nodes,a98_hits,a98_evictions,a98_nodes,a95_hits,a95_evictions,a95_nodes,a93_hits,a93_evictions,a93_nodes",
        &rows_csv,
    )
    .expect("write results");
    println!("wrote {}", csv_path.display());

    let hits: Vec<u64> = all
        .iter()
        .map(|(_, rows)| rows.iter().map(|r| r.hits).sum())
        .collect();
    let spread = (*hits.iter().max().unwrap() - *hits.iter().min().unwrap()) as f64
        / *hits.iter().max().unwrap() as f64;
    println!(
        "\nhit totals vary by only {:.1} % across α — the paper's 'no extraordinary contribution to speedup'",
        100.0 * spread
    );
}
