//! Extension E4: persistent overflow tiers (paper §IV-D).
//!
//! "We have also assessed the various cost aspects of the Cloud's
//! persistent storage, such as Amazon S3 and Elastic Block Storage (EBS)
//! … we discuss our findings of cost benefits and performance tradeoffs
//! among the varying Amazon Cloud storage types in a related paper."
//!
//! This harness runs that comparison here: the eviction workload with no
//! overflow tier (paper configuration — every re-miss re-runs the 23 s
//! service), with an S3-class tier, and with an EBS-class tier. Evicted
//! records spill to storage; memory misses check the tier first.
//!
//! ```text
//! cargo run --release -p ecc-bench --bin ext_storage_tiers
//! ```

use ecc_bench::{paper_cfg, scale_arg, write_csv, PaperService};
use ecc_cloudsim::StorageTier;
use ecc_core::{ElasticCache, WindowConfig};
use ecc_workload::driver::QueryStream;
use ecc_workload::keys::KeyDist;
use ecc_workload::schedule::RateSchedule;

fn main() {
    let scale = scale_arg();
    let steps: u64 = ((600f64 * scale) as u64).max(60);
    println!("Extension: storage-tier sweep, {steps} time steps, m = 100 window (scale {scale})\n");

    let service = PaperService::new(2010);
    let key_space = 32 * 1024u64;

    println!(
        "{:>10} {:>9} {:>10} {:>10} {:>11} {:>12} {:>12}",
        "tier", "speedup", "svc calls", "tier hits", "tier cost $", "compute $", "avg query s"
    );
    let mut rows = Vec::new();
    let mut run = |name: &str, tier: Option<StorageTier>| {
        let mut cfg = paper_cfg(key_space, Some(WindowConfig::paper(100)));
        cfg.overflow_tier = tier;
        // Run inline (not via the shared runner) so the cache — and its
        // tier state — survives for the cost report.
        let mut cache = ElasticCache::new(cfg);
        let stream = QueryStream::new(
            RateSchedule::paper_eviction_phases(),
            KeyDist::uniform(key_space),
            7,
        );
        let mut cur = 0u64;
        for (step, key) in stream.take_steps(steps) {
            while cur < step {
                cache.end_time_step();
                cur += 1;
            }
            let uncached = service.uncached_us(key);
            cache.query(key, uncached, || service.record(key));
        }
        let m = cache.metrics();
        let tier_cost = cache.tier_cost_microdollars() as f64 / 1e6;
        let compute = cache.cloud().billing().dollars();
        println!(
            "{name:>10} {:>9.2} {:>10} {:>10} {:>11.3} {:>12.2} {:>12.2}",
            m.speedup(),
            m.misses - m.tier_hits,
            m.tier_hits,
            tier_cost,
            compute,
            m.avg_query_secs()
        );
        rows.push(vec![
            name.to_string(),
            format!("{:.4}", m.speedup()),
            (m.misses - m.tier_hits).to_string(),
            m.tier_hits.to_string(),
            format!("{tier_cost:.6}"),
            format!("{compute:.4}"),
            format!("{:.4}", m.avg_query_secs()),
        ]);
    };

    run("none", None);
    run("s3", Some(StorageTier::s3_2010()));
    run("ebs", Some(StorageTier::ebs_2010()));

    let csv_path = write_csv(
        "ext_storage_tiers.csv",
        "tier,speedup,service_calls,tier_hits,tier_cost_dollars,compute_dollars,avg_query_secs",
        &rows,
    )
    .expect("write results");
    println!("wrote {}", csv_path.display());

    println!("\nreading it: a tier turns every re-miss of an evicted record (23 s of service");
    println!("time) into a storage fetch (ms) for cents of storage — the §IV-D trade-off.");
    println!("EBS fetches are faster and requests cheaper; S3 charges more per request but");
    println!("is simpler to share. Either dominates re-derivation for this service.");
}
