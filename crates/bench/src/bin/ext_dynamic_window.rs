//! Extension E1: dynamic window sizing (paper §IV-C/§VI future work).
//!
//! "A dynamically changing m can thus be very useful in driving down
//! cost." — this harness quantifies that: the adaptive controller is run
//! against the eviction workload and compared with fixed windows at both
//! ends of the paper's sweep. The question is whether it buys large-m
//! speedup during the intensive period at small-m cost afterwards.
//!
//! ```text
//! cargo run --release -p ecc-bench --bin ext_dynamic_window
//! ```

use ecc_bench::{
    paper_cfg, run_eviction_with_config, scale_arg, smoothed_speedup, write_csv, PaperService,
    StepRow,
};
use ecc_core::{AdaptiveWindowConfig, WindowConfig};

fn summarize(name: &str, rows: &[StepRow]) -> Vec<String> {
    let max_smooth = (1..=rows.len())
        .map(|end| smoothed_speedup(rows, end, 10))
        .fold(0.0f64, f64::max);
    let avg_nodes = rows.iter().map(|r| r.nodes as f64).sum::<f64>() / rows.len() as f64;
    // Cost proxy: node-steps (Σ nodes over time) and the post-intensive tail.
    let node_steps: usize = rows.iter().map(|r| r.nodes).sum();
    let tail_start = rows.len() * 2 / 3;
    let tail_nodes = rows[tail_start..]
        .iter()
        .map(|r| r.nodes as f64)
        .sum::<f64>()
        / rows[tail_start..].len().max(1) as f64;
    println!(
        "{name:<18} max speedup {max_smooth:>6.2}x   avg nodes {avg_nodes:>5.2}   tail nodes {tail_nodes:>5.2}   node-steps {node_steps:>6}"
    );
    vec![
        name.to_string(),
        format!("{max_smooth:.4}"),
        format!("{avg_nodes:.4}"),
        format!("{tail_nodes:.4}"),
        node_steps.to_string(),
    ]
}

fn main() {
    let scale = scale_arg();
    let steps: u64 = ((600f64 * scale) as u64).max(60);
    println!("Extension: dynamic window sizing, {steps} time steps (scale {scale})\n");

    let service = PaperService::new(2010);
    let key_space = 32 * 1024;
    let mut rows_csv = Vec::new();

    for m in [50usize, 400] {
        let cfg = paper_cfg(key_space, Some(WindowConfig::paper(m)));
        let rows = run_eviction_with_config(cfg, steps, 7, &service);
        rows_csv.push(summarize(&format!("fixed m={m}"), &rows));
    }

    let mut cfg = paper_cfg(key_space, Some(WindowConfig::paper(50)));
    cfg.adaptive_window = Some(AdaptiveWindowConfig {
        min_slices: 25,
        max_slices: 400,
        grow_ratio: 1.5,
        shrink_ratio: 0.67,
        step_frac: 0.5,
        ema_weight: 0.25,
    });
    let rows = run_eviction_with_config(cfg, steps, 7, &service);
    rows_csv.push(summarize("adaptive 25..400", &rows));

    let csv_path = write_csv(
        "ext_dynamic_window.csv",
        "config,max_speedup,avg_nodes,tail_nodes,node_steps",
        &rows_csv,
    )
    .expect("write results");
    println!("wrote {}", csv_path.display());

    println!("\nreading it: the controller should land near fixed-400's speedup while its");
    println!("tail fleet (after interest wanes) approaches fixed-50's — cost without the");
    println!("large-window hangover the paper calls out in Figure 6(d).");
}
