//! Figure 3: relative speedup of GBA vs static-2/4/8 (LRU), with GBA's
//! node-allocation curve.
//!
//! Paper setup: 64 Ki uniformly random keys, R = 1 query per time step,
//! 2×10⁶ queries, reported every 250 000 queries. Paper results: the
//! static speedups flatten at ≈1.15× / 1.34× / 2×; GBA exceeds 15×, ending
//! at 15 nodes (≈13 averaged over the run).
//!
//! Run at paper scale (a few minutes) or scaled down:
//!
//! ```text
//! cargo run --release -p ecc-bench --bin fig3_speedup              # full
//! cargo run --release -p ecc-bench --bin fig3_speedup -- --scale 0.1
//! ```

use ecc_bench::{fig3_gba_cache, fig3_static_cache, scale_arg, write_csv, PaperService};
use ecc_workload::driver::QueryStream;
use ecc_workload::keys::KeyDist;
use ecc_workload::schedule::RateSchedule;

fn main() {
    let scale = scale_arg();
    let total: u64 = ((2_000_000f64 * scale) as u64).max(10_000);
    let interval = (total / 8).max(1);
    let key_space = 1 << 16;
    println!(
        "Figure 3: {total} queries over {key_space} keys, reporting every {interval} (scale {scale})\n"
    );

    /// One reporting point: (queries elapsed, cumulative speedup, node count).
    type Series = Vec<(u64, f64, usize)>;

    let service = PaperService::new(2010);
    let stream = QueryStream::new(
        RateSchedule::paper_figure3(),
        KeyDist::uniform(key_space),
        42,
    );

    // One pass per system; identical query streams (same seed).
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut series: Vec<(String, Series)> = Vec::new();

    for n_static in [2usize, 4, 8] {
        let mut cache = fig3_static_cache(n_static);
        let mut points = Vec::new();
        for (i, (_, key)) in stream.take_queries(total).enumerate() {
            let uncached = service.uncached_us(key);
            cache.query(key, uncached, || service.record(key));
            if (i as u64 + 1).is_multiple_of(interval) {
                points.push((i as u64 + 1, cache.metrics().speedup(), n_static));
            }
        }
        println!(
            "static-{n_static}: final speedup {:.2}x (hit rate {:.1} %)",
            cache.metrics().speedup(),
            100.0 * cache.metrics().hit_rate()
        );
        series.push((format!("static-{n_static}"), points));
    }

    let mut gba = fig3_gba_cache();
    let mut points = Vec::new();
    for (i, (_, key)) in stream.take_queries(total).enumerate() {
        let uncached = service.uncached_us(key);
        gba.query(key, uncached, || service.record(key));
        if (i as u64 + 1).is_multiple_of(interval) {
            points.push((i as u64 + 1, gba.metrics().speedup(), gba.node_count()));
        }
    }
    let bill = gba.cloud().billing();
    println!(
        "GBA:      final speedup {:.2}x (hit rate {:.1} %), {} nodes at end, {:.1} nodes avg, ${:.2}",
        gba.metrics().speedup(),
        100.0 * gba.metrics().hit_rate(),
        gba.node_count(),
        bill.avg_nodes(gba.clock().now_us()),
        bill.dollars()
    );
    series.push(("GBA".into(), points));

    // Aligned table: queries | static-2 | static-4 | static-8 | GBA | GBA nodes.
    println!(
        "\n{:>9}  {:>9} {:>9} {:>9} {:>9}  {:>9}",
        "queries", "static-2", "static-4", "static-8", "GBA", "GBA nodes"
    );
    let n_points = series[0].1.len();
    for p in 0..n_points {
        let q = series[0].1[p].0;
        let s2 = series[0].1[p].1;
        let s4 = series[1].1[p].1;
        let s8 = series[2].1[p].1;
        let (_, g, nodes) = series[3].1[p];
        println!("{q:>9}  {s2:>9.2} {s4:>9.2} {s8:>9.2} {g:>9.2}  {nodes:>9}");
        rows.push(vec![
            q.to_string(),
            format!("{s2:.4}"),
            format!("{s4:.4}"),
            format!("{s8:.4}"),
            format!("{g:.4}"),
            nodes.to_string(),
        ]);
    }
    let csv_path = write_csv(
        "fig3.csv",
        "queries,static2_speedup,static4_speedup,static8_speedup,gba_speedup,gba_nodes",
        &rows,
    )
    .expect("write results");
    println!("wrote {}", csv_path.display());

    println!(
        "\npaper reference: static-2 -> 1.15x, static-4 -> 1.34x, static-8 -> 2x, GBA -> 15.2x, 15 nodes"
    );
}
