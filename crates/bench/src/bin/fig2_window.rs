//! Figure 2: the sliding-window eviction model.
//!
//! Walks a scripted query stream through a small window and prints, at
//! each slice expiry, the decay scores λ(k) and the eviction verdicts —
//! the mechanism the paper illustrates with its shaded-window figure.

use ecc_core::SlidingWindow;

fn main() {
    let m = 4;
    let alpha: f64 = 0.8;
    let threshold = alpha.powi(m as i32 - 1); // baseline T_λ
    println!("sliding window: m = {m} slices, α = {alpha}, T_λ = α^(m-1) = {threshold:.3}\n");

    let mut w = SlidingWindow::new(m, alpha, threshold);

    // Scripted interest: key 1 is queried once early; key 2 is re-queried
    // every slice; key 3 arrives late.
    let slices: Vec<Vec<u64>> = vec![
        vec![1, 2],
        vec![2, 2],
        vec![2],
        vec![2, 3],
        vec![2],
        vec![2, 3],
        vec![],
        vec![],
        vec![],
        vec![],
    ];

    for (i, queries) in slices.iter().enumerate() {
        for &k in queries {
            w.note_query(k);
        }
        let expired = w.end_slice();
        print!("slice t+{i:<2} queried {queries:?}");
        if let Some(expired) = expired {
            let victims = w.victims(&expired);
            print!(
                "  | expired slice held {:?}",
                expired.keys().collect::<Vec<_>>()
            );
            for key in expired.keys() {
                let lambda = w.lambda(*key);
                let verdict = if lambda < threshold { "EVICT" } else { "keep " };
                print!("  λ({key})={lambda:.3} {verdict}");
            }
            if victims.is_empty() {
                print!("  -> nothing evicted");
            } else {
                print!("  -> evict {victims:?}");
            }
        }
        println!();
    }

    println!("\nreading the run:");
    println!("  key 1 (queried once, long ago) decays below T_λ and is evicted;");
    println!("  key 2 (re-queried every slice) always scores λ ≈ Σ α^i ≥ T_λ and survives;");
    println!("  key 3 survives while its last query is inside the window, then goes.");
}
