//! Ablation A1: how node-allocation latency shapes GBA's overhead.
//!
//! §IV-B attributes almost all split overhead to node allocation and
//! suggests asynchronous preloading / instant VM boots (§VI) as remedies.
//! This ablation sweeps the boot latency (0 = the "instant boot"
//! future-work scenario) and reports how the Figure-3 run responds.
//!
//! ```text
//! cargo run --release -p ecc-bench --bin ablation_alloc_latency -- --scale 0.1
//! ```

use ecc_bench::{paper_cfg, scale_arg, write_csv, PaperService};
use ecc_cloudsim::BootLatency;
use ecc_core::ElasticCache;
use ecc_workload::driver::QueryStream;
use ecc_workload::keys::KeyDist;
use ecc_workload::schedule::RateSchedule;

fn main() {
    let scale = scale_arg();
    let total: u64 = ((2_000_000f64 * scale) as u64).max(10_000);
    println!("Ablation: boot-latency sweep over a {total}-query GBA run (scale {scale})\n");

    let service = PaperService::new(2010);
    let stream = QueryStream::new(RateSchedule::paper_figure3(), KeyDist::uniform(1 << 16), 42);

    println!(
        "{:>10} {:>10} {:>14} {:>14} {:>12} {:>8}",
        "boot (s)", "speedup", "alloc time(s)", "overhead %", "splits", "nodes"
    );
    let mut rows = Vec::new();
    for boot_secs in [0u64, 10, 80, 160] {
        let mut cfg = paper_cfg(1 << 16, None);
        cfg.boot_latency = BootLatency::fixed(boot_secs * 1_000_000);
        let mut cache = ElasticCache::new(cfg);
        for (_, key) in stream.take_queries(total) {
            let uncached = service.uncached_us(key);
            cache.query(key, uncached, || service.record(key));
        }
        let m = cache.metrics();
        let overhead_pct = 100.0 * (m.alloc_us + m.migration_us) as f64 / m.observed_us as f64;
        println!(
            "{boot_secs:>10} {:>10.2} {:>14.1} {:>14.3} {:>12} {:>8}",
            m.speedup(),
            m.alloc_us as f64 / 1e6,
            overhead_pct,
            m.splits,
            cache.node_count()
        );
        rows.push(vec![
            boot_secs.to_string(),
            format!("{:.4}", m.speedup()),
            m.alloc_us.to_string(),
            m.migration_us.to_string(),
            format!("{overhead_pct:.4}"),
            m.splits.to_string(),
            cache.node_count().to_string(),
        ]);
    }
    let csv_path = write_csv(
        "ablation_alloc_latency.csv",
        "boot_secs,speedup,alloc_us,migration_us,overhead_pct,splits,nodes",
        &rows,
    )
    .expect("write results");
    println!("wrote {}", csv_path.display());

    println!("\nreading it: boot latency sets split overhead almost entirely; even 160 s boots");
    println!("amortize to a small fraction of total time — the paper's amortization claim.");
}
