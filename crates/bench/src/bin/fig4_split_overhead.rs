//! Figure 4: the overhead of node splitting (allocation + migration) over
//! the course of the Figure-3 GBA run.
//!
//! The paper's observation: per-split overhead is large — and it is the
//! node-*allocation* time, not the data movement, that dominates — but
//! splits are rare enough that the cost amortizes away.
//!
//! ```text
//! cargo run --release -p ecc-bench --bin fig4_split_overhead -- --scale 0.25
//! ```

use ecc_bench::{fig3_gba_cache, scale_arg, write_csv, PaperService};
use ecc_cloudsim::Event;
use ecc_workload::driver::QueryStream;
use ecc_workload::keys::KeyDist;
use ecc_workload::schedule::RateSchedule;

fn main() {
    let scale = scale_arg();
    let total: u64 = ((2_000_000f64 * scale) as u64).max(10_000);
    println!("Figure 4: split overhead during a {total}-query GBA run (scale {scale})\n");

    let service = PaperService::new(2010);
    let stream = QueryStream::new(RateSchedule::paper_figure3(), KeyDist::uniform(1 << 16), 42);
    let mut gba = fig3_gba_cache();
    for (_, key) in stream.take_queries(total) {
        let uncached = service.uncached_us(key);
        gba.query(key, uncached, || service.record(key));
    }

    // Walk the merged event trace: an Allocated event immediately preceding
    // a Migration belongs to the same split (GBA boots the node on the
    // critical path, then sweeps).
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut pending_boot_us = 0u64;
    let mut split_idx = 0u32;
    println!(
        "{:>6} {:>14} {:>12} {:>12} {:>12} {:>8}",
        "split", "at (virt. s)", "alloc (s)", "migrate (s)", "total (s)", "records"
    );
    for event in gba.cloud().trace().events() {
        match *event {
            Event::Allocated { boot_us, .. } => pending_boot_us = boot_us,
            Event::Migration {
                at_us,
                records,
                duration_us,
                allocated_node,
                ..
            } => {
                split_idx += 1;
                let alloc_us = if allocated_node { pending_boot_us } else { 0 };
                let total_us = alloc_us + duration_us;
                println!(
                    "{split_idx:>6} {:>14.1} {:>12.2} {:>12.3} {:>12.2} {records:>8}",
                    at_us as f64 / 1e6,
                    alloc_us as f64 / 1e6,
                    duration_us as f64 / 1e6,
                    total_us as f64 / 1e6
                );
                rows.push(vec![
                    split_idx.to_string(),
                    at_us.to_string(),
                    alloc_us.to_string(),
                    duration_us.to_string(),
                    total_us.to_string(),
                    records.to_string(),
                ]);
                pending_boot_us = 0;
            }
            _ => {}
        }
    }

    let m = gba.metrics();
    let alloc_s = m.alloc_us as f64 / 1e6;
    let migrate_s = m.migration_us as f64 / 1e6;
    println!(
        "\ntotals: {} splits ({} allocated a node); allocation {alloc_s:.1} s vs migration {migrate_s:.1} s",
        m.splits, m.splits_with_allocation
    );
    println!(
        "allocation is {:.0}x the data-movement cost — the paper's dominance claim",
        alloc_s / migrate_s.max(1e-9)
    );
    println!(
        "amortization: split overhead is {:.3} % of total observed time over {} queries",
        100.0 * (m.alloc_us + m.migration_us) as f64 / m.observed_us as f64,
        m.queries
    );

    let csv_path = write_csv(
        "fig4.csv",
        "split,at_us,alloc_us,migration_us,total_us,records",
        &rows,
    )
    .expect("write results");
    println!("wrote {}", csv_path.display());
}
