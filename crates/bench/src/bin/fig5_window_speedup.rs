//! Figure 5(a–d): speedup and node allocation over time under
//! eviction/contraction, for sliding windows m = 50 / 100 / 200 / 400.
//!
//! Paper setup: 32 Ki keys; R = 50 q/step (steps 1–100), 250 q/step
//! (101–300), back to 50 from step 400; α = 0.99, T_λ = α^(m-1).
//! Paper results: max speedup ≈1.55× at ~2 nodes for m = 50, rising to
//! ≈8× at ~6 nodes average for m = 400; node counts relax after the
//! intensive period without collapsing to 1 (churn-avoidance).
//!
//! ```text
//! cargo run --release -p ecc-bench --bin fig5_window_speedup
//! ```

use ecc_bench::{
    fig5_header, fig5_rows, run_eviction_experiment, scale_arg, smoothed_speedup, write_csv,
    PaperService, StepRow,
};

fn main() {
    let scale = scale_arg();
    let steps: u64 = ((600f64 * scale) as u64).max(60);
    println!("Figure 5: eviction/contraction speedup, {steps} time steps (scale {scale})\n");

    let service = PaperService::new(2010);
    let windows = [50usize, 100, 200, 400];
    let mut all: Vec<(usize, Vec<StepRow>)> = Vec::new();
    for &m in &windows {
        let rows = run_eviction_experiment(m, 0.99, steps, 7, &service);
        let max_smooth = (1..=rows.len())
            .map(|end| smoothed_speedup(&rows, end, 10))
            .fold(0.0f64, f64::max);
        let avg_nodes = rows.iter().map(|r| r.nodes as f64).sum::<f64>() / rows.len() as f64;
        let end_nodes = rows.last().map(|r| r.nodes).unwrap_or(0);
        println!(
            "m = {m:<4} max speedup (10-step smoothed) {max_smooth:>6.2}x   avg nodes {avg_nodes:>5.2}   end nodes {end_nodes}"
        );
        all.push((m, rows));
    }

    // Per-step table (every 25 steps) across the four windows.
    println!(
        "\n{:>5}  {:>16} {:>16} {:>16} {:>16}",
        "step", "m=50 (spd/nodes)", "m=100", "m=200", "m=400"
    );
    let report_every = (steps / 24).max(1);
    for i in (0..steps as usize).step_by(report_every as usize) {
        let mut line = format!("{:>5}", i + 1);
        for (_, rows) in &all {
            let r = &rows[i];
            let smooth = smoothed_speedup(rows, i + 1, 10);
            line.push_str(&format!("  {smooth:>8.2} /{:>3}  ", r.nodes));
        }
        println!("{line}");
    }
    let rows_csv = fig5_rows(&all, steps, report_every);
    let csv_path = write_csv("fig5.csv", &fig5_header(&windows), &rows_csv).expect("write results");
    println!("wrote {}", csv_path.display());

    println!("\npaper reference: m=50 -> ~1.55x max @ ~2 nodes; m=400 -> ~8x max @ ~6 nodes avg;");
    println!("nodes relax after step 300 but never back to 1 (conservative contraction).");
}
