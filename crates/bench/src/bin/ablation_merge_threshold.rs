//! Ablation A2: the contraction (node-merge) threshold and churn.
//!
//! §IV-C sets the merge threshold to 65 % "to address churn-avoidance,
//! i.e., repeated allocation/deallocation of nodes". This ablation sweeps
//! the threshold through the eviction workload and reports allocation /
//! merge churn and the average fleet size.
//!
//! ```text
//! cargo run --release -p ecc-bench --bin ablation_merge_threshold
//! ```

use ecc_bench::{paper_cfg, scale_arg, write_csv, PaperService};
use ecc_core::{ElasticCache, WindowConfig};
use ecc_workload::driver::QueryStream;
use ecc_workload::keys::KeyDist;
use ecc_workload::schedule::RateSchedule;

fn main() {
    let scale = scale_arg();
    let steps: u64 = ((600f64 * scale) as u64).max(60);
    println!("Ablation: merge-threshold sweep, {steps} time steps (scale {scale})\n");

    let service = PaperService::new(2010);
    println!(
        "{:>10} {:>9} {:>8} {:>10} {:>10} {:>10}",
        "threshold", "launched", "merges", "churn", "avg nodes", "speedup"
    );
    let mut rows = Vec::new();
    for threshold in [0.30f64, 0.50, 0.65, 0.80, 0.95] {
        let key_space = 32 * 1024;
        let mut cfg = paper_cfg(key_space, Some(WindowConfig::paper(100)));
        cfg.merge_fill_threshold = threshold;
        let mut cache = ElasticCache::new(cfg);
        let stream = QueryStream::new(
            RateSchedule::paper_eviction_phases(),
            KeyDist::uniform(key_space),
            7,
        );
        let mut cur_step = 0u64;
        for (step, key) in stream.take_steps(steps) {
            while cur_step < step {
                cache.end_time_step();
                cur_step += 1;
            }
            let uncached = service.uncached_us(key);
            cache.query(key, uncached, || service.record(key));
        }
        while cur_step < steps {
            cache.end_time_step();
            cur_step += 1;
        }
        let m = cache.metrics();
        let bill = cache.cloud().billing();
        let launched = cache.cloud().total_launched();
        // Churn: every allocation beyond the end fleet was transient.
        let churn = launched as u64 + m.merges;
        println!(
            "{threshold:>10.2} {launched:>9} {:>8} {churn:>10} {:>10.2} {:>10.2}",
            m.merges,
            bill.avg_nodes(cache.clock().now_us()),
            m.speedup()
        );
        rows.push(vec![
            format!("{threshold:.2}"),
            launched.to_string(),
            m.merges.to_string(),
            churn.to_string(),
            format!("{:.4}", bill.avg_nodes(cache.clock().now_us())),
            format!("{:.4}", m.speedup()),
        ]);
    }
    let csv_path = write_csv(
        "ablation_merge_threshold.csv",
        "threshold,launched,merges,churn,avg_nodes,speedup",
        &rows,
    )
    .expect("write results");
    println!("wrote {}", csv_path.display());

    println!("\nreading it: low thresholds never reclaim nodes (cost), high thresholds merge");
    println!("aggressively and re-allocate when load returns (churn); 65 % sits between.");
}
