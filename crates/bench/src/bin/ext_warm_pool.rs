//! Extension E2: asynchronous node preloading (paper §VI).
//!
//! "Strategies, such as preloading and data replication can certainly be
//! used to implement an asynchronous node allocation." — this harness runs
//! the Figure-3 growth workload with warm pools of 0/1/2 standbys and a
//! proactive-split variant, reporting how much allocation latency leaves
//! the critical path and what the standing insurance costs.
//!
//! ```text
//! cargo run --release -p ecc-bench --bin ext_warm_pool -- --scale 0.25
//! ```

use ecc_bench::{paper_cfg, scale_arg, write_csv, PaperService};
use ecc_core::ElasticCache;
use ecc_workload::driver::QueryStream;
use ecc_workload::keys::KeyDist;
use ecc_workload::schedule::RateSchedule;

fn main() {
    let scale = scale_arg();
    let total: u64 = ((2_000_000f64 * scale) as u64).max(10_000);
    println!("Extension: warm-pool sweep over a {total}-query GBA run (scale {scale})\n");

    let service = PaperService::new(2010);
    let stream = QueryStream::new(RateSchedule::paper_figure3(), KeyDist::uniform(1 << 16), 42);

    println!(
        "{:>22} {:>10} {:>16} {:>8} {:>10} {:>10}",
        "config", "speedup", "blocked boot(s)", "splits", "nodes", "cost $"
    );
    let mut rows = Vec::new();
    let mut run = |name: &str, warm: usize, proactive: Option<f64>| {
        let mut cfg = paper_cfg(1 << 16, None);
        cfg.warm_pool = warm;
        cfg.proactive_split_fill = proactive;
        let mut cache = ElasticCache::new(cfg);
        let mut cur_step = 0u64;
        for (step, key) in stream.take_queries(total) {
            // Proactive splits and pool refills happen at step boundaries.
            while cur_step < step {
                cache.end_time_step();
                cur_step += 1;
            }
            let uncached = service.uncached_us(key);
            cache.query(key, uncached, || service.record(key));
        }
        let m = cache.metrics();
        let bill = cache.cloud().billing();
        println!(
            "{name:>22} {:>10.2} {:>16.1} {:>8} {:>10} {:>10.2}",
            m.speedup(),
            m.alloc_us as f64 / 1e6,
            m.splits,
            cache.node_count(),
            bill.dollars()
        );
        rows.push(vec![
            name.to_string(),
            format!("{:.4}", m.speedup()),
            m.alloc_us.to_string(),
            m.splits.to_string(),
            cache.node_count().to_string(),
            format!("{:.4}", bill.dollars()),
        ]);
    };

    run("blocking (paper)", 0, None);
    run("warm pool 1", 1, None);
    run("warm pool 2", 2, None);
    run("proactive split 85%", 0, Some(0.85));
    run("pool 1 + proactive", 1, Some(0.85));

    let csv_path = write_csv(
        "ext_warm_pool.csv",
        "config,speedup,blocked_alloc_us,splits,nodes,dollars",
        &rows,
    )
    .expect("write results");
    println!("wrote {}", csv_path.display());

    println!("\nreading it: 'blocked boot' is allocation latency paid on the query path —");
    println!("a one-standby pool removes nearly all of it for the price of one extra");
    println!("always-on instance; proactive splitting removes it by splitting early,");
    println!("between time steps, with no standing cost.");
}
