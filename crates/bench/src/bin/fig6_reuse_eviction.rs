//! Figure 6(a–d): data reuse (hits) and eviction counts per time step for
//! the same four sliding windows as Figure 5.
//!
//! Paper observations reproduced here:
//! * reuse rises during the query-intensive period for every window, more
//!   strongly for larger m;
//! * after step 300 (rate back to 50 q/step) eviction turns aggressive in
//!   all cases **except** m = 400, whose window still spans the intensive
//!   period — its eviction series *decreases* while the other windows'
//!   increase;
//! * node allocation for m = 400 keeps growing past the intensive period.
//!
//! ```text
//! cargo run --release -p ecc-bench --bin fig6_reuse_eviction
//! ```

use ecc_bench::{run_eviction_experiment, scale_arg, write_csv, PaperService, StepRow};

fn main() {
    let scale = scale_arg();
    let steps: u64 = ((600f64 * scale) as u64).max(60);
    println!("Figure 6: reuse & eviction per step, {steps} time steps (scale {scale})\n");

    let service = PaperService::new(2010);
    let windows = [50usize, 100, 200, 400];
    let mut all: Vec<(usize, Vec<StepRow>)> = Vec::new();
    for &m in &windows {
        let rows = run_eviction_experiment(m, 0.99, steps, 7, &service);
        let total_hits: u64 = rows.iter().map(|r| r.hits).sum();
        let total_evictions: u64 = rows.iter().map(|r| r.evictions).sum();
        println!("m = {m:<4} total reuse {total_hits:>7}   total evictions {total_evictions:>7}");
        all.push((m, rows));
    }

    println!(
        "\n{:>5}  {:>15} {:>15} {:>15} {:>15}",
        "step", "m=50 (hit/evict)", "m=100", "m=200", "m=400"
    );
    let report_every = (steps / 24).max(1);
    let mut rows_csv: Vec<Vec<String>> = Vec::new();
    for i in (0..steps as usize).step_by(report_every as usize) {
        let mut line = format!("{:>5}", i + 1);
        let mut csv = vec![(i + 1).to_string()];
        for (_, rows) in &all {
            let r = &rows[i];
            line.push_str(&format!("  {:>6}/{:<6}  ", r.hits, r.evictions));
            csv.push(r.hits.to_string());
            csv.push(r.evictions.to_string());
        }
        println!("{line}");
        rows_csv.push(csv);
    }
    let csv_path = write_csv(
        "fig6.csv",
        "step,m50_hits,m50_evictions,m100_hits,m100_evictions,m200_hits,m200_evictions,m400_hits,m400_evictions",
        &rows_csv,
    )
    .expect("write results");
    println!("wrote {}", csv_path.display());

    // The paper's headline contrast: eviction trend after the intensive
    // period for the smallest vs the largest window.
    let after = |rows: &[StepRow], from: usize, to: usize| -> (u64, u64) {
        let lo = from.min(rows.len().saturating_sub(1));
        let hi = to.min(rows.len());
        let mid = (lo + hi) / 2;
        let first: u64 = rows[lo..mid].iter().map(|r| r.evictions).sum();
        let second: u64 = rows[mid..hi].iter().map(|r| r.evictions).sum();
        (first, second)
    };
    if steps >= 560 {
        let dir = |x: u64, y: u64| if y > x { "up" } else { "down" };
        let (a1, a2) = after(&all[0].1, 300, 560);
        let (d1, d2) = after(&all[3].1, 400, 560);
        println!("\npost-intensive eviction trend (half-period sums):");
        println!(
            "  m=50  (steps 300-560): {a1} -> {a2} ({}) — the small window expires fresh keys throughout",
            dir(a1, a2)
        );
        println!(
            "  m=400 (steps 400-560): {d1} -> {d2} ({}) — expiry only begins at step 400, on intensive-period slices",
            dir(d1, d2)
        );
        println!("  (the paper's 6(d) trend direction is schedule-sensitive; see EXPERIMENTS.md)");
    }
}
