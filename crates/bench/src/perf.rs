//! The `cargo xtask bench` performance harness.
//!
//! Micro benches cover the three measured hot paths (window note/expire,
//! protocol encode/decode, elastic insert/lookup) plus the sequential
//! baselines they are compared against; one macro bench drives a live
//! coordinator cluster through the load generator. Results are emitted as
//! `results/bench.json` rows of `{name, ops, ops_per_sec, p50_ns, p99_ns}`
//! so before/after runs and future PRs stay comparable.
//!
//! Pairs share a `*_rescore`/`*_incremental` or `*_sequential`/`*_batched`
//! suffix; [`speedup`] reads the ratio between them.

use std::io;
use std::path::Path;
use std::time::{Duration, Instant};

use bytes::Bytes;
use ecc_cloudsim::InstanceId;
use ecc_core::{CacheNode, ElasticCache, Record, ShardedNode, SlidingWindow, DEFAULT_STRIPES};
use ecc_net::client::RemoteNode;
use ecc_net::coordinator::LiveCoordinator;
use ecc_net::loadgen::{
    run_load, run_load_fanout_traced, run_load_pipelined, LoadReport, TraceOpts,
};
use ecc_net::protocol::Request;
use ecc_net::server::CacheServer;

use crate::paper_cfg;

/// One benchmark row, as serialized into `results/bench.json`.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Bench identifier (stable across PRs — comparisons key on it).
    pub name: String,
    /// Total individual operations performed while timed.
    pub ops: u64,
    /// Operations per second over the timed portion.
    pub ops_per_sec: f64,
    /// Median per-iteration latency in nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile per-iteration latency in nanoseconds.
    pub p99_ns: u64,
}

/// Per-iteration latency accumulator; only time spent inside
/// [`Samples::time`] counts toward throughput, so refill/setup work
/// between iterations stays out of the measurement.
struct Samples {
    lat_ns: Vec<u64>,
}

impl Samples {
    fn new(iters: u64) -> Self {
        Self {
            lat_ns: Vec::with_capacity(iters as usize),
        }
    }

    /// Time one iteration.
    fn time<T>(&mut self, op: impl FnOnce() -> T) -> T {
        let t0 = Instant::now();
        let out = op();
        self.lat_ns.push(t0.elapsed().as_nanos() as u64);
        out
    }

    /// Fold into a result row; `ops_per_iter` scales iteration count to
    /// individual operations (keys scored, records evicted, …).
    fn finish(mut self, name: &str, ops_per_iter: u64) -> BenchResult {
        let total_ns: u64 = self.lat_ns.iter().sum();
        let ops = self.lat_ns.len() as u64 * ops_per_iter;
        self.lat_ns.sort_unstable();
        let pct = |p: f64| -> u64 {
            if self.lat_ns.is_empty() {
                0
            } else {
                self.lat_ns[((self.lat_ns.len() - 1) as f64 * p).round() as usize]
            }
        };
        BenchResult {
            name: name.to_string(),
            ops,
            ops_per_sec: ops as f64 / (total_ns as f64 / 1e9).max(1e-9),
            p50_ns: pct(0.50),
            p99_ns: pct(0.99),
        }
    }
}

/// Workload knobs for one harness run; `--smoke` shrinks everything to a
/// few seconds for CI while keeping every bench exercised.
#[derive(Debug, Clone, Copy)]
pub struct BenchOptions {
    /// CI-sized run.
    pub smoke: bool,
}

impl BenchOptions {
    fn pick(self, smoke: u64, full: u64) -> u64 {
        if self.smoke {
            smoke
        } else {
            full
        }
    }
}

/// Run the full suite; ordering is stable so JSON diffs stay readable.
pub fn run_benches(opts: BenchOptions) -> io::Result<Vec<BenchResult>> {
    let mut results = Vec::new();
    results.push(bench_calibration(opts));
    results.extend(bench_window(opts));
    results.push(bench_protocol(opts));
    results.extend(bench_elastic(opts));
    results.extend(bench_wire_eviction(opts)?);
    results.push(bench_live_cluster(opts)?);
    results.extend(bench_node_scaling(opts));
    results.extend(bench_wire_scaling(opts)?);
    results.extend(bench_storage(opts));
    Ok(results)
}

/// Storage-engine rows (ISSUE 10): the linked-leaf range sweep the
/// Sweep-and-Migrate path depends on (`bptree_sweep_slab`) and a
/// 4-worker steady-state PUT/GET churn against [`ShardedNode`]
/// (`node_put_slab_w4`) whose timed region runs under the counting
/// allocator (see [`crate::alloc_count`]).
fn bench_storage(opts: BenchOptions) -> Vec<BenchResult> {
    vec![bench_bptree_sweep(opts), bench_node_put_churn(opts)]
}

/// Full-index leaf-chain sweep over a churn-shuffled B+-tree: keys are
/// inserted in a multiplicative-shuffle order so leaves land in the slab
/// in the scattered order production churn leaves them, then each timed
/// iteration walks `range(..)` end to end summing keys and values — the
/// access pattern behind Sweep-and-Migrate key scans and λ-window
/// eviction sweeps. Dense inline node storage is exactly what this row
/// measures: with per-node heap `Vec`s the walk chases two pointers per
/// leaf; with inline arrays it reads the slab arena sequentially.
fn bench_bptree_sweep(opts: BenchOptions) -> BenchResult {
    // Power-of-two key count so the odd-multiplier shuffle is a bijection.
    let n: u64 = opts.pick(1 << 17, 1 << 20);
    let iters = opts.pick(30, 60);
    let mut tree: ecc_bptree::BPlusTree<u64, u64> = ecc_bptree::BPlusTree::new(64);
    for i in 0..n {
        let key = i.wrapping_mul(0x9E3779B97F4A7C15) & (n - 1);
        tree.insert(key, key.wrapping_mul(3));
    }
    let mut samples = Samples::new(iters);
    for _ in 0..iters {
        samples.time(|| {
            let mut sum = 0u64;
            for (k, v) in tree.range(..) {
                sum = sum.wrapping_add(*k).wrapping_add(*v);
            }
            std::hint::black_box(sum);
        });
    }
    samples.finish("bptree_sweep_slab", n)
}

/// Per-worker timed iterations of the PUT/GET churn row.
const PUT_CHURN_WARMUP: u64 = 2_000;

/// 4-worker steady-state ingest churn: each timed op overwrites a
/// resident key with a freshly ingested 1 KiB payload and reads another
/// key back — the server's steady state once the working set is resident.
/// The whole timed region is bracketed by the counting allocator, so the
/// row measures both throughput and how many times the storage engine
/// enters the global allocator per op (the slab arena's target is zero;
/// see `steady_state_allocs` in the xtask bench output).
fn bench_node_put_churn(opts: BenchOptions) -> BenchResult {
    let per_worker = opts.pick(30_000, 100_000);
    let workers = 4usize;
    let key_space = 4096u64;
    let payload_len = 1024usize;
    let capacity = key_space * (payload_len as u64) * 4;
    let shard = ShardedNode::new(capacity, 64, DEFAULT_STRIPES);
    let payload = vec![0xC5u8; payload_len];
    // Prefill through the slab ingest path so every resident record owns
    // a slab slot before the timed window: the first put_slice over a
    // heap-backed record would otherwise grow arena pages mid-window.
    for k in 0..key_space {
        shard.put_slice(k, &payload);
    }

    let start_gate = std::sync::Barrier::new(workers + 1);
    let done_gate = std::sync::Barrier::new(workers + 1);
    // start → measure → done: workers pause between start and measure so
    // the main thread can read the allocation counter with every worker
    // warmup finished and no timed op yet running — otherwise warmup-tail
    // allocations (a late arena grow) leak into the counted window.
    let measure_gate = std::sync::Barrier::new(workers + 1);
    let (lats, elapsed, allocs): (Vec<u64>, Duration, u64) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let shard = &shard;
                let payload = &payload;
                let start_gate = &start_gate;
                let measure_gate = &measure_gate;
                let done_gate = &done_gate;
                scope.spawn(move || {
                    let mut lat = Vec::with_capacity(per_worker as usize);
                    let mut state =
                        0x9E3779B97F4A7C15u64 ^ (w as u64).wrapping_mul(0xA24BAED4963EE407);
                    let step = |state: &mut u64| -> u64 {
                        *state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        (*state >> 33) % key_space
                    };
                    // Untimed warmup: reaches allocator/lock steady state
                    // (lazily created parking-lot state, warmed freelists)
                    // before the counted window opens.
                    for _ in 0..PUT_CHURN_WARMUP {
                        let k = step(&mut state);
                        shard.put_slice(k, payload);
                        std::hint::black_box(shard.get(step(&mut state)));
                    }
                    start_gate.wait();
                    measure_gate.wait();
                    for _ in 0..per_worker {
                        let put_key = step(&mut state);
                        let get_key = step(&mut state);
                        let t0 = Instant::now();
                        shard.put_slice(put_key, payload);
                        std::hint::black_box(shard.get(get_key).map(|r| r.len()));
                        lat.push(t0.elapsed().as_nanos() as u64);
                    }
                    done_gate.wait();
                    lat
                })
            })
            .collect();
        start_gate.wait();
        let allocs_before = crate::alloc_count::allocation_count();
        let start = Instant::now();
        measure_gate.wait();
        done_gate.wait();
        let elapsed = start.elapsed();
        let allocs = crate::alloc_count::allocation_count() - allocs_before;
        let lats = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap_or_default())
            .collect();
        (lats, elapsed, allocs)
    });
    STEADY_STATE_ALLOCS.store(allocs, std::sync::atomic::Ordering::Relaxed);
    STEADY_STATE_OPS.store(
        per_worker * workers as u64,
        std::sync::atomic::Ordering::Relaxed,
    );
    if let Ok(mut classes) = STEADY_STATE_CLASSES.lock() {
        *classes = shard.slab_stats();
    }
    scaling_row("node_put_slab_w4", lats, elapsed)
}

/// Global allocation count across the latest [`bench_node_put_churn`]
/// timed region in this process (relaxed publication; the suite runs
/// benches sequentially). `u64::MAX` until the row has run.
static STEADY_STATE_ALLOCS: std::sync::atomic::AtomicU64 =
    std::sync::atomic::AtomicU64::new(u64::MAX);

/// PUT+GET op count of that same timed region.
static STEADY_STATE_OPS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Per-size-class slab stats of the churn shard, snapshotted right after
/// its timed window closes (the CI occupancy artifact).
static STEADY_STATE_CLASSES: std::sync::Mutex<Vec<ecc_core::ClassStats>> =
    std::sync::Mutex::new(Vec::new());

/// Per-class slab occupancy of the latest steady-state churn shard, empty
/// until the churn row has run. Only classes that carved at least one
/// page appear in the CSV the xtask driver writes from this.
pub fn steady_state_slab_stats() -> Vec<ecc_core::ClassStats> {
    STEADY_STATE_CLASSES
        .lock()
        .map(|g| g.clone())
        .unwrap_or_default()
}

/// `(allocations, ops)` of the latest steady-state churn window, or
/// `None` if the churn row has not run yet. The slab-arena engine's
/// contract — asserted by `cargo xtask bench` — is that the first number
/// is exactly zero.
pub fn steady_state_allocs() -> Option<(u64, u64)> {
    match STEADY_STATE_ALLOCS.load(std::sync::atomic::Ordering::Relaxed) {
        u64::MAX => None,
        v => Some((
            v,
            STEADY_STATE_OPS.load(std::sync::atomic::Ordering::Relaxed),
        )),
    }
}

/// Worker-thread counts for the scaling curves.
const SCALING_WORKERS: [usize; 4] = [1, 2, 4, 8];

/// Name of the machine-speed reference row (see [`bench_calibration`]).
pub const CALIBRATION_BENCH: &str = "cpu_calibration";

/// Machine-speed reference: a fixed single-threaded ALU loop — no memory
/// traffic, no locks, no syscalls. Code changes to the cache cannot move
/// this row; host-level interference (CPU steal on a shared core, thermal
/// throttling, noisy neighbors) moves it in proportion to every other
/// row. The gate divides gated deltas by the base-vs-current calibration
/// ratio to cancel that drift (see `gate::GateReport::compare`).
fn bench_calibration(opts: BenchOptions) -> BenchResult {
    let iters = opts.pick(50_000_000, 100_000_000);
    let start = Instant::now();
    let mut state = 0x9E3779B97F4A7C15u64;
    for _ in 0..iters {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
    }
    std::hint::black_box(state);
    let elapsed = start.elapsed();
    BenchResult {
        name: CALIBRATION_BENCH.to_string(),
        ops: iters,
        ops_per_sec: iters as f64 / elapsed.as_secs_f64().max(1e-9),
        // Not a latency bench: zero percentiles opt the row out of every
        // p99 comparison.
        p50_ns: 0,
        p99_ns: 0,
    }
}

/// Fold concurrent workers' per-op latencies and the run's wall time into
/// one row: throughput is aggregate (ops over wall time, not the sum of
/// per-op latencies, which would cancel the concurrency being measured).
fn scaling_row(name: &str, mut lat_ns: Vec<u64>, wall: Duration) -> BenchResult {
    lat_ns.sort_unstable();
    let pct = |p: f64| -> u64 {
        if lat_ns.is_empty() {
            0
        } else {
            lat_ns[((lat_ns.len() - 1) as f64 * p).round() as usize]
        }
    };
    BenchResult {
        name: name.to_string(),
        ops: lat_ns.len() as u64,
        ops_per_sec: lat_ns.len() as f64 / wall.as_secs_f64().max(1e-9),
        p50_ns: pct(0.50),
        p99_ns: pct(0.99),
    }
}

/// The tentpole scaling curve: closed-loop GET throughput against one
/// node's index at 1/2/4/8 worker threads, pre-PR design vs current.
///
/// * `node_get_mutex_w{N}` — a faithful in-process reproduction of the
///   old server read path: one global `Mutex<CacheNode>`, and each GET
///   memcpys the payload into a fresh response body *while holding the
///   lock* (what `handle()` did before this change).
/// * `node_get_sharded_w{N}` — the current path: [`ShardedNode`] stripe
///   read locks and a refcount-bump [`Record::bytes`] body.
///
/// 64 KiB payloads make the eliminated memcpy visible: the copy, not the
/// B+-tree walk, dominated the old critical section.
fn bench_node_scaling(opts: BenchOptions) -> Vec<BenchResult> {
    // Gated rows (node_get_sharded_w4) need a stable throughput number,
    // which means a timed region long enough that one scheduler timeslice
    // cannot move it by double digits. Sharded GETs are ~100 ns, so they
    // get far more iterations than the ~5 µs mutex+memcpy GETs; the
    // speedup ratio is iteration-count independent.
    let mutex_per_worker = opts.pick(2_000, 4_000);
    let sharded_per_worker = opts.pick(50_000, 100_000);
    let key_space = 64u64;
    let payload = 64 * 1024;
    let capacity = key_space * (payload as u64) * 2;

    let mutex_node = parking_lot::Mutex::new(CacheNode::new(InstanceId(0), capacity, 64));
    let sharded = ShardedNode::new(capacity, 64, DEFAULT_STRIPES);
    for k in 0..key_space {
        mutex_node.lock().insert(k, Record::filler(payload));
        sharded.put(k, Record::filler(payload));
    }

    // Closed loop: each worker hammers GETs over an LCG key stream and
    // logs per-op latency; the row's throughput is aggregate wall-clock.
    let run_once = |name: &str,
                    workers: usize,
                    per_worker: u64,
                    get: &(dyn Fn(u64) -> usize + Sync)|
     -> BenchResult {
        // Workers rendezvous at a barrier before the timed region so the
        // throughput row measures GETs, not thread spawn latency.
        let barrier = std::sync::Barrier::new(workers + 1);
        let (lats, elapsed): (Vec<u64>, _) = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let barrier = &barrier;
                    scope.spawn(move || {
                        let mut lat = Vec::with_capacity(per_worker as usize);
                        let mut state =
                            0x9E3779B97F4A7C15u64 ^ (w as u64).wrapping_mul(0xA24BAED4963EE407);
                        barrier.wait();
                        for _ in 0..per_worker {
                            state = state
                                .wrapping_mul(6364136223846793005)
                                .wrapping_add(1442695040888963407);
                            let key = (state >> 33) % key_space;
                            let t0 = Instant::now();
                            std::hint::black_box(get(key));
                            lat.push(t0.elapsed().as_nanos() as u64);
                        }
                        lat
                    })
                })
                .collect();
            barrier.wait();
            let start = Instant::now();
            let lats = handles
                .into_iter()
                .flat_map(|h| h.join().unwrap_or_default())
                .collect();
            (lats, start.elapsed())
        });
        scaling_row(name, lats, elapsed)
    };

    let mut rows = Vec::new();
    for &w in &SCALING_WORKERS {
        let mutex_get = |key: u64| -> usize {
            let node = mutex_node.lock();
            // xtask: allow(no-payload-copy) — this IS the pre-PR baseline
            // being measured against.
            let body = node.get(key).map(|r| Bytes::copy_from_slice(r.as_slice()));
            body.map(|b| b.len()).unwrap_or(0)
        };
        rows.push(run_once(
            &format!("node_get_mutex_w{w}"),
            w,
            mutex_per_worker,
            &mutex_get,
        ));
    }
    for &w in &SCALING_WORKERS {
        let sharded_get =
            |key: u64| -> usize { sharded.get(key).map(|r| r.bytes().len()).unwrap_or(0) };
        // Gated family: when workers outnumber cores, one timeslice
        // boundary inside the ~20 ms timed region can move wall-clock
        // throughput by double digits. Keep the best of three repeats —
        // the minimum-interference measurement is the reproducible one.
        let name = format!("node_get_sharded_w{w}");
        let best = (0..3)
            .map(|_| run_once(&name, w, sharded_per_worker, &sharded_get))
            .max_by(|a, b| a.ops_per_sec.total_cmp(&b.ops_per_sec));
        rows.extend(best);
    }
    rows
}

/// In-flight windows for the wire sweep: `wire_node_w{N}` drives two
/// pipelined connections at window N each. Concurrency on the wire is
/// *in-flight requests*, not client threads — on a small host extra
/// client threads only measure the client's scheduler (that artifact is
/// what made the old thread-per-connection curve *fall* from w1 to w8),
/// while a deeper window genuinely amortizes the per-burst syscall pair
/// and wakeups across more frames (watch `reactor_frames_per_wake`).
const WIRE_WINDOWS: [usize; 5] = [1, 2, 4, 8, 16];

/// Closed-loop throughput over the wire at increasing in-flight windows
/// (rows `wire_node_w{N}`, two pipelined connections at window N), the
/// end-to-end counterpart of [`bench_node_scaling`]'s in-process curve,
/// plus an ungated serial 4-worker row (`wire_serial_w4`) pinning the
/// one-round-trip-at-a-time cost the old blocking server was stuck with.
///
/// 256 B values keep the sweep a front-end benchmark (framing, syscalls,
/// scheduling) rather than a loopback-memcpy one — the paper's cached
/// service results are small records, and the in-process counterpart
/// serves its payloads by refcount bump.
fn bench_wire_scaling(opts: BenchOptions) -> io::Result<Vec<BenchResult>> {
    // wire_node_w* rows are gated, and the p99 of a client RTT
    // distribution needs enough samples to be a real quantile rather than
    // a near-max order statistic — so smoke keeps the full iteration
    // count (the whole wire sweep costs a few seconds).
    let _ = opts;
    let clients = 2usize;
    let total_ops = 48_000u64;
    let key_space = 256u64;
    let value_len = 256usize;
    let server = CacheServer::spawn(key_space * (value_len as u64) * 2, 64)?;
    let addr = server.addr();

    // Prewarm so the measured runs are (almost) all hits.
    let mut client = RemoteNode::connect(addr)?;
    for chunk in (0..key_space).collect::<Vec<_>>().chunks(64) {
        let items: Vec<(u64, Bytes)> = chunk
            .iter()
            .map(|&k| (k, Bytes::from(vec![(k % 251) as u8; value_len])))
            .collect();
        client.put_many(items)?;
    }

    let mut ring: ecc_chash::HashRing<usize> = ecc_chash::HashRing::new(64);
    ring.insert_bucket(63, 0)
        .map_err(|e| io::Error::other(format!("ring setup: {e:?}")))?;

    let row_from = |name: String, report: LoadReport| BenchResult {
        name,
        ops: report.ops,
        ops_per_sec: report.throughput(),
        p50_ns: report.latency_us.0 * 1_000,
        p99_ns: report.latency_us.2.max(report.latency_us.0) * 1_000,
    };

    let mut rows = Vec::new();
    for &w in &WIRE_WINDOWS {
        // Best of three: wire numbers share the box with the server, so
        // keep the minimum-interference repeat (same policy as the
        // in-process scaling curve above).
        let mut best: Option<LoadReport> = None;
        for _ in 0..3 {
            let report =
                run_load_pipelined(&ring, |_| addr, clients, total_ops, key_space, value_len, w)?;
            if best
                .as_ref()
                .is_none_or(|b| report.throughput() > b.throughput())
            {
                best = Some(report);
            }
        }
        let report = best.expect("three repeats ran");
        rows.push(row_from(format!("wire_node_w{w}"), report));

        if w == 4 {
            // Sampled-tracing overhead row: the identical window-4 sweep
            // against the same server, but with 1-in-TRACE_SAMPLE requests
            // rooted as `req` spans whose context rides the 0x0E frame
            // extension (server opens its `srv` triplet per traced frame).
            // `gate::trace_overhead` compares it against `wire_node_w4`
            // *within this run*, so machine drift cancels — which is why
            // it runs here, back-to-back with its untraced twin, not at
            // the end of the sweep: on a shared host the machine state a
            // few bench blocks later is a different machine, and the pair
            // would measure that drift instead of tracing. The name sits
            // outside the `wire_node_w*` wildcard so the baseline gate
            // does not double-gate it.
            let trace_obs = ecc_obs::ObsRegistry::new(ecc_obs::TimeSource::real());
            trace_obs.set_origin(2);
            let topts = TraceOpts {
                obs: trace_obs,
                sample: TRACE_SAMPLE,
            };
            let mut best: Option<LoadReport> = None;
            for _ in 0..3 {
                let report = run_load_fanout_traced(
                    &ring,
                    |_| addr,
                    clients,
                    1,
                    total_ops,
                    key_space,
                    value_len,
                    4,
                    Some(&topts),
                )?;
                if best
                    .as_ref()
                    .is_none_or(|b| report.throughput() > b.throughput())
                {
                    best = Some(report);
                }
            }
            let report = best.expect("three repeats ran");
            rows.push(row_from("wire_traced_w4".into(), report));
        }
    }

    // Ungated serial comparison row: four blocking one-request-at-a-time
    // workers, the closed loop PR 5 measured. Keeps the pipelining win
    // visible in bench.json without gating a number the windowed rows
    // already cover.
    let serial = run_load(&ring, |_| addr, 4, total_ops, key_space, value_len)?;
    rows.push(row_from("wire_serial_w4".into(), serial));
    Ok(rows)
}

/// Trace sampling rate for the `wire_traced_w4` overhead row — the same
/// 1-in-64 CI runs use, so the gated overhead matches what production
/// sampling would cost.
const TRACE_SAMPLE: u64 = 64;

/// Slice-expiry scoring: the pre-incremental full `lambda()` rescan of
/// every expired key vs the occurrence-index `victims()` threshold scan.
fn bench_window(opts: BenchOptions) -> Vec<BenchResult> {
    let iters = opts.pick(30, 200);
    let keys_per_slice = opts.pick(512, 2048);
    let m = 16usize;
    let alpha = 0.9f64;
    let threshold = alpha.powi(3);

    let run = |incremental: bool, name: &str| -> BenchResult {
        let mut w = SlidingWindow::new(m, alpha, threshold);
        // Each slice notes a rotating quarter of the key space, so every
        // key recurs in 4 of the 16 live slices — victims and survivors
        // both occur.
        let key_space = keys_per_slice * 4;
        let mut next = 0u64;
        let note_slice = |w: &mut SlidingWindow, next: &mut u64| {
            for i in 0..keys_per_slice {
                w.note_query((*next + i) % key_space);
            }
            *next = (*next + keys_per_slice) % key_space;
        };
        for _ in 0..m {
            note_slice(&mut w, &mut next);
            let _ = w.end_slice();
        }
        let mut samples = Samples::new(iters);
        for _ in 0..iters {
            note_slice(&mut w, &mut next);
            samples.time(|| {
                if let Some(expired) = w.end_slice() {
                    let evictable = if incremental {
                        w.victims(&expired).len()
                    } else {
                        expired
                            .keys()
                            .filter(|&&k| w.lambda(k) < w.threshold())
                            .count()
                    };
                    std::hint::black_box(evictable);
                }
            });
        }
        samples.finish(name, keys_per_slice)
    };

    vec![
        run(false, "window_expiry_rescore"),
        run(true, "window_expiry_incremental"),
    ]
}

/// Wire-format cost of one 128-record `PutMany` frame: encode into a
/// reused buffer, then decode it back.
fn bench_protocol(opts: BenchOptions) -> BenchResult {
    let iters = opts.pick(500, 5_000);
    let items: Vec<(u64, Bytes)> = (0..128u64)
        .map(|k| (k, Bytes::from(vec![0xAB; 64])))
        .collect();
    let req = Request::PutMany { items };
    let mut buf = Vec::new();
    let mut samples = Samples::new(iters);
    for _ in 0..iters {
        samples.time(|| {
            buf.clear();
            req.encode_into(&mut buf);
            std::hint::black_box(Request::decode(&buf[..]));
        });
    }
    samples.finish("proto_putmany_roundtrip", 128)
}

/// In-process elastic cache: insert throughput, then lookup throughput
/// over the resident set.
fn bench_elastic(opts: BenchOptions) -> Vec<BenchResult> {
    let n = opts.pick(5_000, 50_000);
    let key_space = 1u64 << 16;
    let mut cache = ElasticCache::new(paper_cfg(key_space, None));
    let mut insert = Samples::new(n);
    for i in 0..n {
        let key = (i * 7919) % key_space;
        let rec = Record::from_vec(vec![(i % 251) as u8; 128]);
        insert.time(|| {
            let _ = std::hint::black_box(cache.insert(key, rec));
        });
    }
    let mut lookup = Samples::new(n);
    for i in 0..n {
        let key = (i * 7919) % key_space;
        lookup.time(|| {
            std::hint::black_box(cache.lookup(key));
        });
    }
    vec![
        insert.finish("elastic_insert", 1),
        lookup.finish("elastic_lookup", 1),
    ]
}

/// Evicting a victim set over the wire: one blocking `Remove` round-trip
/// per key vs a single `EvictMany` frame. The refill between iterations
/// is untimed.
fn bench_wire_eviction(opts: BenchOptions) -> io::Result<Vec<BenchResult>> {
    // Enough iterations that p99 is a real quantile, not the max of a
    // handful of samples — this row is gated on p99 inflation.
    let iters = opts.pick(20, 100);
    let victims = opts.pick(128, 256);
    let keys: Vec<u64> = (0..victims).collect();
    let server = CacheServer::spawn(64 << 20, 64)?;
    let mut client = RemoteNode::connect(server.addr())?;

    let refill = |client: &mut RemoteNode| -> io::Result<()> {
        let items: Vec<(u64, Bytes)> = keys
            .iter()
            .map(|&k| (k, Bytes::from(vec![(k % 251) as u8; 64])))
            .collect();
        client.put_many(items)?;
        Ok(())
    };

    let mut seq = Samples::new(iters);
    for _ in 0..iters {
        refill(&mut client)?;
        seq.time(|| -> io::Result<()> {
            for &k in &keys {
                client.remove(k)?;
            }
            Ok(())
        })?;
    }
    let mut batched = Samples::new(iters);
    for _ in 0..iters {
        refill(&mut client)?;
        batched.time(|| -> io::Result<()> {
            std::hint::black_box(client.evict_many(&keys)?);
            Ok(())
        })?;
    }
    Ok(vec![
        seq.finish("wire_evict_sequential", victims),
        batched.finish("wire_evict_batched", victims),
    ])
}

/// Macro bench: a live coordinator cluster (grown by real GBA splits)
/// under the concurrent load generator's GET/PUT-on-miss traffic.
fn bench_live_cluster(opts: BenchOptions) -> io::Result<BenchResult> {
    let total_ops = opts.pick(2_000, 20_000);
    let mut coord = LiveCoordinator::start(1 << 16, 64 << 10)?;
    // Force a few splits so the fan-out paths actually span nodes.
    for k in 0..600u64 {
        coord.put(k * 100 + 1, vec![(k % 251) as u8; 256])?;
    }
    let node_unavailable = || io::Error::other("ring references a node with no address");
    let report = {
        let coord = &coord;
        run_load(
            coord.ring(),
            |id| {
                coord
                    .node_addr(*id)
                    .unwrap_or_else(|| std::net::SocketAddr::from(([127, 0, 0, 1], 0)))
            },
            4,
            total_ops,
            1 << 12,
            128,
        )?
    };
    if report.errors > 0 {
        return Err(node_unavailable());
    }
    coord.shutdown()?;
    Ok(BenchResult {
        name: "live_cluster_loadgen".to_string(),
        ops: report.ops,
        ops_per_sec: report.throughput(),
        p50_ns: report.latency_us.0 * 1_000,
        p99_ns: report.latency_us.2 * 1_000,
    })
}

/// Throughput ratio `fast / slow` between two named rows, when both exist.
pub fn speedup(results: &[BenchResult], fast: &str, slow: &str) -> Option<f64> {
    let find = |n: &str| results.iter().find(|r| r.name == n);
    let (f, s) = (find(fast)?, find(slow)?);
    if s.ops_per_sec <= 0.0 {
        return None;
    }
    Some(f.ops_per_sec / s.ops_per_sec)
}

/// Serialize rows as `{"benches": [...]}` (hand-rolled: the workspace
/// vendors no JSON serializer, and the schema is flat).
pub fn to_json(results: &[BenchResult]) -> String {
    let mut out = String::from("{\n  \"benches\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"ops\": {}, \"ops_per_sec\": {:.1}, \
             \"p50_ns\": {}, \"p99_ns\": {}}}{}\n",
            r.name,
            r.ops,
            r.ops_per_sec,
            r.p50_ns,
            r.p99_ns,
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Write the JSON report, creating parent directories as needed.
pub fn write_json(path: &Path, results: &[BenchResult]) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, to_json(results))
}

/// Validate serialized report text against the documented schema
/// (EXPERIMENTS.md §A4): a `benches` array whose every row carries a
/// non-empty `name`, positive `ops` and `ops_per_sec`, and latency fields
/// with `p50_ns <= p99_ns`. A missing field, a non-finite number (`NaN`
/// never survives serialization as valid JSON), or an empty array is an
/// error. Returns the number of validated rows.
pub fn validate_json(text: &str) -> Result<usize, String> {
    let benches_at = text
        .find("\"benches\"")
        .ok_or_else(|| "missing `benches` key".to_string())?;
    let rest = &text[benches_at..];
    let open = rest
        .find('[')
        .ok_or_else(|| "`benches` is not an array".to_string())?;
    let close = rest
        .rfind(']')
        .ok_or_else(|| "`benches` array never closes".to_string())?;
    if close < open {
        return Err("`benches` array never closes".into());
    }
    let body = &rest[open + 1..close];

    let mut rows = 0usize;
    let mut cursor = 0usize;
    while let Some(start) = body[cursor..].find('{') {
        let start = cursor + start;
        let end = body[start..]
            .find('}')
            .map(|e| start + e)
            .ok_or_else(|| format!("row {rows}: unterminated object"))?;
        let row = &body[start + 1..end];
        let ctx = |field: &str, what: &str| format!("row {rows} ({field}): {what}");

        let name = field_str(row, "name").ok_or_else(|| ctx("name", "missing"))?;
        if name.is_empty() {
            return Err(ctx("name", "empty"));
        }
        for field in ["ops", "p50_ns", "p99_ns"] {
            let v: u64 = field_raw(row, field)
                .ok_or_else(|| ctx(field, "missing"))?
                .parse()
                .map_err(|_| ctx(field, "not an unsigned integer"))?;
            if field == "ops" && v == 0 {
                return Err(ctx(field, "zero"));
            }
        }
        let ops_per_sec: f64 = field_raw(row, "ops_per_sec")
            .ok_or_else(|| ctx("ops_per_sec", "missing"))?
            .parse()
            .map_err(|_| ctx("ops_per_sec", "not a number"))?;
        if !ops_per_sec.is_finite() || ops_per_sec <= 0.0 {
            return Err(ctx("ops_per_sec", "not finite and positive"));
        }
        let p50: u64 = field_raw(row, "p50_ns")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        let p99: u64 = field_raw(row, "p99_ns")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        if p50 > p99 {
            return Err(ctx("p50_ns", "exceeds p99_ns"));
        }
        rows += 1;
        cursor = end + 1;
    }
    if rows == 0 {
        return Err("`benches` array is empty".into());
    }
    Ok(rows)
}

/// Parse serialized report text back into rows — the inverse of
/// [`to_json`], used by the regression gate to load a committed baseline.
/// Validates as it goes (same rules as [`validate_json`]).
pub fn parse_json(text: &str) -> Result<Vec<BenchResult>, String> {
    validate_json(text)?;
    let benches_at = text
        .find("\"benches\"")
        .ok_or_else(|| "missing `benches` key".to_string())?;
    let rest = &text[benches_at..];
    let open = rest.find('[').ok_or_else(|| "no array".to_string())?;
    let close = rest.rfind(']').ok_or_else(|| "no array end".to_string())?;
    let body = &rest[open + 1..close];

    let mut rows = Vec::new();
    let mut cursor = 0usize;
    while let Some(start) = body[cursor..].find('{') {
        let start = cursor + start;
        let end = body[start..]
            .find('}')
            .map(|e| start + e)
            .ok_or_else(|| "unterminated row".to_string())?;
        let row = &body[start + 1..end];
        let get = |f: &str| field_raw(row, f).ok_or_else(|| format!("missing {f}"));
        rows.push(BenchResult {
            name: field_str(row, "name")
                .ok_or_else(|| "missing name".to_string())?
                .to_string(),
            ops: get("ops")?.parse().map_err(|_| "bad ops".to_string())?,
            ops_per_sec: get("ops_per_sec")?
                .parse()
                .map_err(|_| "bad ops_per_sec".to_string())?,
            p50_ns: get("p50_ns")?
                .parse()
                .map_err(|_| "bad p50_ns".to_string())?,
            p99_ns: get("p99_ns")?
                .parse()
                .map_err(|_| "bad p99_ns".to_string())?,
        });
        cursor = end + 1;
    }
    Ok(rows)
}

/// Extract the raw (unquoted) value text of `"key": value` within one
/// serialized row, up to the next comma or end of object.
fn field_raw<'a>(row: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let at = row.find(&pat)? + pat.len();
    let rest = row[at..].trim_start();
    let end = rest.find(',').unwrap_or(rest.len());
    Some(rest[..end].trim())
}

/// Extract the string value of `"key": "value"` within one serialized row.
fn field_str<'a>(row: &'a str, key: &str) -> Option<&'a str> {
    let raw = field_raw(row, key)?;
    raw.strip_prefix('"')?.strip_suffix('"')
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Manual before/after capture for EXPERIMENTS.md A10: run with
    /// `cargo test -p ecc-bench --release capture_storage_rows -- --ignored --nocapture`.
    #[test]
    #[ignore = "manual full-profile capture, minutes of runtime"]
    fn capture_storage_rows() {
        let rows = bench_storage(BenchOptions { smoke: false });
        for r in &rows {
            eprintln!(
                "{}: {:.0} ops/s p50={}ns p99={}ns ops={}",
                r.name, r.ops_per_sec, r.p50_ns, r.p99_ns, r.ops
            );
        }
        eprintln!("steady_state (allocs, ops): {:?}", steady_state_allocs());
        for c in steady_state_slab_stats() {
            if c.pages > 0 {
                eprintln!(
                    "class {}: pages={} total={} live={} allocs={}",
                    c.slot_size, c.pages, c.total_slots, c.live_slots, c.allocs
                );
            }
        }
    }

    #[test]
    fn smoke_suite_runs_and_serializes() {
        let results = run_benches(BenchOptions { smoke: true }).expect("bench suite");
        assert!(results.len() >= 6);
        for r in &results {
            assert!(r.ops > 0, "{}: zero ops", r.name);
            assert!(r.ops_per_sec > 0.0, "{}: zero throughput", r.name);
            assert!(r.p50_ns <= r.p99_ns, "{}: p50 > p99", r.name);
        }
        let json = to_json(&results);
        assert!(json.contains("\"benches\""));
        assert!(json.contains("window_expiry_incremental"));
        // Every row closes; the list is well-formed enough for jq.
        assert_eq!(json.matches("{\"name\"").count(), results.len());
    }

    #[test]
    fn validate_json_accepts_the_serializer_and_pins_the_schema() {
        let rows = vec![BenchResult {
            name: "elastic_insert".into(),
            ops: 100,
            ops_per_sec: 5.5,
            p50_ns: 10,
            p99_ns: 20,
        }];
        assert_eq!(validate_json(&to_json(&rows)), Ok(1));

        // Pinned golden text: this exact shape is the documented schema.
        let golden = "{\n  \"benches\": [\n    {\"name\": \"x\", \"ops\": 1, \
                      \"ops_per_sec\": 2.0, \"p50_ns\": 3, \"p99_ns\": 4}\n  ]\n}\n";
        assert_eq!(validate_json(golden), Ok(1));

        // NaN throughput is a schema violation, not a warning.
        let nan = golden.replace("2.0", "NaN");
        assert!(validate_json(&nan).unwrap_err().contains("ops_per_sec"));
        // A missing field is an error.
        let missing = golden.replace("\"p99_ns\": 4", "\"other\": 4");
        assert!(validate_json(&missing).unwrap_err().contains("p99_ns"));
        // An empty report is an error.
        assert!(validate_json("{\"benches\": []}").is_err());
        // Inverted percentiles are an error.
        let inverted = golden.replace("\"p50_ns\": 3", "\"p50_ns\": 9");
        assert!(validate_json(&inverted).unwrap_err().contains("p50_ns"));
    }

    #[test]
    fn parse_json_inverts_to_json() {
        let rows = vec![
            BenchResult {
                name: "a".into(),
                ops: 100,
                ops_per_sec: 5.5,
                p50_ns: 10,
                p99_ns: 20,
            },
            BenchResult {
                name: "b".into(),
                ops: 7,
                ops_per_sec: 123456.8,
                p50_ns: 1,
                p99_ns: 9,
            },
        ];
        let back = parse_json(&to_json(&rows)).expect("roundtrip");
        assert_eq!(back.len(), 2);
        for (orig, parsed) in rows.iter().zip(&back) {
            assert_eq!(orig.name, parsed.name);
            assert_eq!(orig.ops, parsed.ops);
            assert_eq!(orig.p50_ns, parsed.p50_ns);
            assert_eq!(orig.p99_ns, parsed.p99_ns);
            // ops_per_sec serializes at one decimal place.
            assert!((orig.ops_per_sec - parsed.ops_per_sec).abs() < 0.1);
        }
        assert!(parse_json("{\"benches\": []}").is_err());
    }

    #[test]
    fn speedup_reads_ratio_between_rows() {
        let rows = vec![
            BenchResult {
                name: "fast".into(),
                ops: 10,
                ops_per_sec: 300.0,
                p50_ns: 1,
                p99_ns: 2,
            },
            BenchResult {
                name: "slow".into(),
                ops: 10,
                ops_per_sec: 100.0,
                p50_ns: 3,
                p99_ns: 4,
            },
        ];
        let s = speedup(&rows, "fast", "slow").expect("ratio");
        assert!((s - 3.0).abs() < 1e-9);
        assert!(speedup(&rows, "fast", "missing").is_none());
    }
}
