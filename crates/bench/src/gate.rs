//! The scale-regression gate: banked speedups become a test.
//!
//! `cargo xtask bench --gate` runs a fresh suite and compares it against
//! the committed `results/bench_baseline.json`. A hot-path bench on the
//! [`ALLOWLIST`] that loses more than [`TOLERANCE`] of its ops/sec — or
//! whose p99 inflates by more than the same fraction — fails the gate with
//! a per-bench delta table. Benches off the allowlist are reported but
//! never fatal (macro benches and cold paths are too noisy to gate on).
//!
//! Three defenses keep the gate honest on a shared machine without
//! widening the tolerance: gated comparisons are normalized by the
//! [`CALIBRATION_BENCH`] machine-drift ratio, p99 inflation must also
//! clear the absolute [`P99_NOISE_FLOOR_NS`] (µs-bucketed histograms turn
//! one bucket step into +100% relative), and the xtask driver confirms a
//! suspected regression by rerunning the suite ([`merge_best`]) before
//! failing.
//!
//! Blessing a new baseline is deliberate: `cargo xtask bench --gate
//! --bless` overwrites the baseline with the fresh run (see DESIGN.md §14
//! for when that is legitimate).

use crate::perf::{BenchResult, CALIBRATION_BENCH};

/// Fractional regression tolerated before the gate fails (ISSUE 7: 15%).
pub const TOLERANCE: f64 = 0.15;

/// Absolute floor a p99 increase must also clear before it counts as a
/// regression. Wire-bench p99s come from a power-of-two µs histogram, so
/// the smallest representable tail change near 0.5 ms is a whole-bucket
/// jump (+100%); in-process p99s at the ns–µs scale swing by scheduler
/// timeslices on a shared host. Both read as huge *relative* deltas while
/// being pure measurement noise. Any real tail regression the allowlist
/// exists to catch — a lock convoy, an extra round trip, a rescore path
/// creeping back — inflates p99 by well over this floor.
pub const P99_NOISE_FLOOR_NS: u64 = 750_000;

/// Gated bench names. A trailing `*` matches any suffix, so one entry can
/// cover a scaling curve (`wire_node_w*` ⇒ `wire_node_w1`…`wire_node_w16`).
pub const ALLOWLIST: [&str; 6] = [
    "window_expiry_incremental",
    "wire_evict_batched",
    "node_get_sharded_w4",
    "wire_node_w*",
    "bptree_sweep_slab",
    "node_put_slab_w4",
];

/// The sampled-tracing overhead pair: `wire_traced_w4` (1-in-64 requests
/// rooted as spans riding the wire) against its untraced twin
/// `wire_node_w4`, from the *same* suite run. Paired in-run comparison
/// cancels machine drift exactly, so the tolerance can be far tighter
/// than [`TOLERANCE`]; the traced name deliberately sits outside the
/// `wire_node_w*` allowlist wildcard so the baseline gate does not also
/// gate it against history.
pub const TRACED_ROW: &str = "wire_traced_w4";

/// The untraced twin [`TRACED_ROW`] is compared against.
pub const TRACED_PAIR_ROW: &str = "wire_node_w4";

/// Maximum fractional ops/sec the sampled-tracing path may cost in-run.
pub const TRACE_OVERHEAD_TOLERANCE: f64 = 0.03;

/// Within-run paired overhead check: the traced row's throughput must sit
/// within [`TRACE_OVERHEAD_TOLERANCE`] of its untraced twin. Returns
/// `Ok(None)` when either row is absent (a run that skipped the wire
/// sweep has nothing to check), `Ok(Some(delta))` with the signed
/// fractional delta on success, and `Err(message)` when tracing costs
/// more than the tolerance.
pub fn trace_overhead(current: &[BenchResult]) -> Result<Option<f64>, String> {
    let find = |n: &str| current.iter().find(|r| r.name == n);
    let (Some(traced), Some(plain)) = (find(TRACED_ROW), find(TRACED_PAIR_ROW)) else {
        return Ok(None);
    };
    if plain.ops_per_sec <= 0.0 {
        return Ok(None);
    }
    let delta = (traced.ops_per_sec - plain.ops_per_sec) / plain.ops_per_sec;
    if delta < -TRACE_OVERHEAD_TOLERANCE {
        return Err(format!(
            "sampled tracing costs {:.1}% ops/sec in-run ({TRACED_ROW} {:.0} vs \
             {TRACED_PAIR_ROW} {:.0}; tolerance {:.0}%)",
            -delta * 100.0,
            traced.ops_per_sec,
            plain.ops_per_sec,
            TRACE_OVERHEAD_TOLERANCE * 100.0
        ));
    }
    Ok(Some(delta))
}

/// Does `name` match an allowlist `pattern` (exact, or prefix up to `*`)?
fn matches(pattern: &str, name: &str) -> bool {
    match pattern.strip_suffix('*') {
        Some(prefix) => name.starts_with(prefix),
        None => pattern == name,
    }
}

/// Is this bench name gated?
pub fn is_gated(name: &str) -> bool {
    ALLOWLIST.iter().any(|p| matches(p, name))
}

/// Merge several runs of the suite into one best-of row set: per bench
/// name, the highest ops/sec and the lowest p50/p99 seen across runs.
/// Best-of-N is the standard de-noising for a shared-machine gate — real
/// regressions depress *every* run, scheduler interference only some.
/// Rows keep first-run order; names only some runs produced are appended.
pub fn merge_best(runs: &[Vec<BenchResult>]) -> Vec<BenchResult> {
    let mut merged: Vec<BenchResult> = Vec::new();
    for run in runs {
        for r in run {
            match merged.iter_mut().find(|m| m.name == r.name) {
                Some(m) => {
                    m.ops_per_sec = m.ops_per_sec.max(r.ops_per_sec);
                    m.p50_ns = m.p50_ns.min(r.p50_ns);
                    m.p99_ns = m.p99_ns.min(r.p99_ns);
                    m.ops = m.ops.max(r.ops);
                }
                None => merged.push(r.clone()),
            }
        }
    }
    merged
}

/// Merge several runs into one median row set: per bench name, the
/// median of each field independently. This is what `--bless` commits:
/// a best-of baseline would lock in the machine's luckiest window as the
/// bar every later honest run must re-hit, while the median is the
/// typical state. Ties on even run counts break toward leniency (lower
/// ops/sec, higher p99) — the gate exists to catch real regressions, not
/// to win coin flips.
pub fn merge_median(runs: &[Vec<BenchResult>]) -> Vec<BenchResult> {
    let mut names: Vec<String> = Vec::new();
    for run in runs {
        for r in run {
            if !names.contains(&r.name) {
                names.push(r.name.clone());
            }
        }
    }
    names
        .into_iter()
        .filter_map(|name| {
            let rows: Vec<&BenchResult> =
                runs.iter().flatten().filter(|r| r.name == name).collect();
            let first = rows.first()?;
            let mut ops_per_sec: Vec<f64> = rows.iter().map(|r| r.ops_per_sec).collect();
            ops_per_sec.sort_by(f64::total_cmp);
            let mut p50: Vec<u64> = rows.iter().map(|r| r.p50_ns).collect();
            let mut p99: Vec<u64> = rows.iter().map(|r| r.p99_ns).collect();
            p50.sort_unstable();
            p99.sort_unstable();
            let lo = (rows.len() - 1) / 2;
            let hi = rows.len() / 2;
            Some(BenchResult {
                name: first.name.clone(),
                ops: first.ops,
                ops_per_sec: ops_per_sec[lo],
                p50_ns: p50[hi],
                p99_ns: p99[hi],
            })
        })
        .collect()
}

/// The verdict for one bench name present in baseline or current run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Within tolerance (or not gated).
    Ok,
    /// Gated and regressed beyond tolerance — fails the gate.
    Regressed,
    /// Gated, in the baseline, but missing from the fresh run — fails the
    /// gate (a silently dropped bench must not silently drop its guarantee).
    MissingCurrent,
    /// Present in the fresh run but not the baseline — informational; the
    /// next bless will start gating it.
    NewInCurrent,
}

/// One row of the gate report.
#[derive(Debug, Clone)]
pub struct GateRow {
    /// Bench name.
    pub name: String,
    /// Whether the allowlist covers this bench.
    pub gated: bool,
    /// Baseline ops/sec, if the bench is in the baseline.
    pub base_ops_per_sec: Option<f64>,
    /// Fresh-run ops/sec, if the bench ran.
    pub cur_ops_per_sec: Option<f64>,
    /// Baseline p99 ns.
    pub base_p99_ns: Option<u64>,
    /// Fresh-run p99 ns.
    pub cur_p99_ns: Option<u64>,
    /// The verdict.
    pub verdict: Verdict,
}

impl GateRow {
    /// Signed ops/sec delta as a fraction of baseline (−0.2 = 20% slower).
    pub fn ops_delta(&self) -> Option<f64> {
        match (self.base_ops_per_sec, self.cur_ops_per_sec) {
            (Some(b), Some(c)) if b > 0.0 => Some((c - b) / b),
            _ => None,
        }
    }

    /// Signed p99 delta as a fraction of baseline (+0.2 = 20% slower tail).
    pub fn p99_delta(&self) -> Option<f64> {
        match (self.base_p99_ns, self.cur_p99_ns) {
            (Some(b), Some(c)) if b > 0 => Some((c as f64 - b as f64) / b as f64),
            _ => None,
        }
    }
}

/// Bounds on the machine-drift normalization ratio. The clamp keeps a
/// corrupt or gamed calibration row from excusing an arbitrary slowdown:
/// even if the fresh calibration claims the machine is 10× slower, gated
/// benches still may not lose more than `1 − 0.5·(1 − TOLERANCE)` ≈ 58%.
pub const DRIFT_CLAMP: (f64, f64) = (0.5, 2.0);

/// The full gate comparison.
#[derive(Debug, Clone)]
pub struct GateReport {
    /// One row per bench name seen in either run, baseline order first.
    pub rows: Vec<GateRow>,
    /// The machine-drift ratio (fresh ÷ baseline [`CALIBRATION_BENCH`]
    /// ops/sec, clamped to [`DRIFT_CLAMP`]) every gated comparison was
    /// normalized by; `1.0` when either side lacks the calibration row.
    pub drift: f64,
}

impl GateReport {
    /// Compare a fresh run against the committed baseline.
    ///
    /// Gated thresholds are scaled by the calibration ratio: on a shared
    /// single-core host the whole suite drifts with CPU steal, and the
    /// [`CALIBRATION_BENCH`] row — which no cache-code change can move —
    /// measures exactly that drift in each window.
    pub fn compare(baseline: &[BenchResult], current: &[BenchResult]) -> GateReport {
        let find = |set: &[BenchResult], name: &str| -> Option<BenchResult> {
            set.iter().find(|r| r.name == name).cloned()
        };
        let cal = |set: &[BenchResult]| -> Option<f64> {
            find(set, CALIBRATION_BENCH)
                .map(|r| r.ops_per_sec)
                .filter(|&v| v > 0.0)
        };
        let drift = match (cal(baseline), cal(current)) {
            (Some(b), Some(c)) => (c / b).clamp(DRIFT_CLAMP.0, DRIFT_CLAMP.1),
            _ => 1.0,
        };
        let mut rows = Vec::new();
        for b in baseline {
            let gated = is_gated(&b.name);
            let cur = find(current, &b.name);
            let verdict = match &cur {
                None if gated => Verdict::MissingCurrent,
                None => Verdict::Ok,
                Some(c) if gated => {
                    let ops_regressed = c.ops_per_sec < b.ops_per_sec * drift * (1.0 - TOLERANCE);
                    let p99_regressed = b.p99_ns > 0
                        && c.p99_ns as f64 > b.p99_ns as f64 / drift * (1.0 + TOLERANCE)
                        && c.p99_ns.saturating_sub(b.p99_ns) > P99_NOISE_FLOOR_NS;
                    if ops_regressed || p99_regressed {
                        Verdict::Regressed
                    } else {
                        Verdict::Ok
                    }
                }
                Some(_) => Verdict::Ok,
            };
            rows.push(GateRow {
                name: b.name.clone(),
                gated,
                base_ops_per_sec: Some(b.ops_per_sec),
                cur_ops_per_sec: cur.as_ref().map(|c| c.ops_per_sec),
                base_p99_ns: Some(b.p99_ns),
                cur_p99_ns: cur.as_ref().map(|c| c.p99_ns),
                verdict,
            });
        }
        for c in current {
            if baseline.iter().any(|b| b.name == c.name) {
                continue;
            }
            rows.push(GateRow {
                name: c.name.clone(),
                gated: is_gated(&c.name),
                base_ops_per_sec: None,
                cur_ops_per_sec: Some(c.ops_per_sec),
                base_p99_ns: None,
                cur_p99_ns: Some(c.p99_ns),
                verdict: Verdict::NewInCurrent,
            });
        }
        GateReport { rows, drift }
    }

    /// Does the gate fail (any gated bench regressed or went missing)?
    pub fn failed(&self) -> bool {
        self.rows
            .iter()
            .any(|r| matches!(r.verdict, Verdict::Regressed | Verdict::MissingCurrent))
    }

    /// The rows that fail the gate.
    pub fn failures(&self) -> impl Iterator<Item = &GateRow> {
        self.rows
            .iter()
            .filter(|r| matches!(r.verdict, Verdict::Regressed | Verdict::MissingCurrent))
    }

    /// Render the per-bench delta table (the CI artifact on failure).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<28} {:>6} {:>14} {:>14} {:>8} {:>8}  verdict\n",
            "bench", "gated", "base ops/s", "cur ops/s", "Δops", "Δp99"
        ));
        let pct = |d: Option<f64>| -> String {
            match d {
                Some(d) => format!("{:+.1}%", d * 100.0),
                None => "-".to_string(),
            }
        };
        let num = |v: Option<f64>| -> String {
            match v {
                Some(v) => format!("{v:.0}"),
                None => "-".to_string(),
            }
        };
        for r in &self.rows {
            let verdict = match r.verdict {
                Verdict::Ok => "ok",
                Verdict::Regressed => "REGRESSED",
                Verdict::MissingCurrent => "MISSING",
                Verdict::NewInCurrent => "new",
            };
            out.push_str(&format!(
                "{:<28} {:>6} {:>14} {:>14} {:>8} {:>8}  {}\n",
                r.name,
                if r.gated { "yes" } else { "no" },
                num(r.base_ops_per_sec),
                num(r.cur_ops_per_sec),
                pct(r.ops_delta()),
                pct(r.p99_delta()),
                verdict
            ));
        }
        out.push_str(&format!(
            "\ngate: tolerance {:.0}% on ops/sec drop and p99 inflation (p99 deltas under \
             the {} µs jitter floor never fail); machine-drift normalization ×{:.3}; \
             {} gated, {} failing\n",
            TOLERANCE * 100.0,
            P99_NOISE_FLOOR_NS / 1_000,
            self.drift,
            self.rows.iter().filter(|r| r.gated).count(),
            self.failures().count()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(name: &str, ops_per_sec: f64, p99_ns: u64) -> BenchResult {
        BenchResult {
            name: name.to_string(),
            ops: 1000,
            ops_per_sec,
            p50_ns: p99_ns / 2,
            p99_ns,
        }
    }

    #[test]
    fn merge_best_takes_the_best_field_per_bench() {
        let run1 = vec![row("a", 1000.0, 2000), row("b", 500.0, 900)];
        let run2 = vec![row("a", 1200.0, 2500), row("c", 50.0, 10)];
        let merged = merge_best(&[run1, run2]);
        // First-run order, later-only names appended.
        assert_eq!(
            merged.iter().map(|r| r.name.as_str()).collect::<Vec<_>>(),
            ["a", "b", "c"]
        );
        // Per field: max ops/sec, min p99 — even from different runs.
        assert_eq!(merged[0].ops_per_sec, 1200.0);
        assert_eq!(merged[0].p99_ns, 2000);
        assert_eq!(merged[1].ops_per_sec, 500.0);
        assert_eq!(merged[2].p99_ns, 10);
    }

    #[test]
    fn merge_median_commits_the_typical_run() {
        let runs = vec![
            vec![row("a", 900.0, 5000)],
            vec![row("a", 1000.0, 1000)],
            vec![row("a", 1100.0, 3000)],
        ];
        let merged = merge_median(&runs);
        assert_eq!(merged[0].ops_per_sec, 1000.0);
        assert_eq!(merged[0].p99_ns, 3000);
        // Even run count: ties break lenient — lower ops, higher p99.
        let runs = vec![vec![row("a", 900.0, 1000)], vec![row("a", 1100.0, 3000)]];
        let merged = merge_median(&runs);
        assert_eq!(merged[0].ops_per_sec, 900.0);
        assert_eq!(merged[0].p99_ns, 3000);
    }

    #[test]
    fn allowlist_wildcards_cover_the_scaling_curve() {
        assert!(is_gated("window_expiry_incremental"));
        assert!(is_gated("wire_evict_batched"));
        assert!(is_gated("node_get_sharded_w4"));
        for w in [1, 2, 4, 8, 16] {
            assert!(is_gated(&format!("wire_node_w{w}")));
        }
        // The slab-era storage rows (ISSUE 10) bank the inline-node sweep
        // and the zero-alloc ingest churn.
        assert!(is_gated("bptree_sweep_slab"));
        assert!(is_gated("node_put_slab_w4"));
        assert!(!is_gated("node_get_mutex_w4"));
        // The serial depth-1 comparison row rides along ungated: it pins
        // the cost the reactor+pipelining removed, not a target to hold.
        assert!(!is_gated("wire_serial_w4"));
        // The traced row is enforced by the paired in-run check, not the
        // baseline gate — its name must stay off the wildcard.
        assert!(!is_gated(TRACED_ROW));
        assert!(!is_gated("wire_evict_sequential"));
        assert!(!is_gated("window_expiry_rescore"));
        assert!(!is_gated("proto_putmany_roundtrip"));
    }

    #[test]
    fn within_tolerance_passes() {
        let base = vec![row("wire_node_w4", 1000.0, 1000)];
        let cur = vec![row("wire_node_w4", 900.0, 1100)]; // −10% ops, +10% p99
        let report = GateReport::compare(&base, &cur);
        assert!(!report.failed(), "{}", report.render());
        assert_eq!(report.rows[0].verdict, Verdict::Ok);
    }

    #[test]
    fn ops_regression_beyond_tolerance_fails() {
        let base = vec![row("wire_node_w4", 1000.0, 1000)];
        let cur = vec![row("wire_node_w4", 800.0, 1000)]; // −20%
        let report = GateReport::compare(&base, &cur);
        assert!(report.failed());
        assert_eq!(report.rows[0].verdict, Verdict::Regressed);
        assert!((report.rows[0].ops_delta().unwrap() + 0.2).abs() < 1e-9);
        assert!(report.render().contains("REGRESSED"));
    }

    #[test]
    fn p99_inflation_beyond_tolerance_fails() {
        let base = vec![row("window_expiry_incremental", 1000.0, 5_000_000)];
        let cur = vec![row("window_expiry_incremental", 1000.0, 6_000_000)]; // +20%, +1 ms
        let report = GateReport::compare(&base, &cur);
        assert!(report.failed());
        assert_eq!(report.failures().count(), 1);
    }

    #[test]
    fn p99_jitter_below_the_absolute_floor_passes() {
        // A whole-bucket jump in the µs histogram (+106%) is only +33 µs
        // in absolute terms — measurement granularity, not a regression.
        let base = vec![row("wire_node_w1", 1000.0, 31_000)];
        let cur = vec![row("wire_node_w1", 1000.0, 64_000)];
        let report = GateReport::compare(&base, &cur);
        assert!(!report.failed(), "{}", report.render());
        // Exactly the floor above baseline still passes ("> floor")…
        let base = vec![row("wire_node_w8", 1000.0, 511_000)];
        let cur = vec![row("wire_node_w8", 1000.0, 511_000 + P99_NOISE_FLOOR_NS)];
        assert!(!GateReport::compare(&base, &cur).failed());
        // …one past it, with the relative check also violated, fails.
        let cur = vec![row("wire_node_w8", 1000.0, 511_001 + P99_NOISE_FLOOR_NS)];
        assert!(GateReport::compare(&base, &cur).failed());
    }

    #[test]
    fn ungated_benches_never_fail_the_gate() {
        let base = vec![row("wire_evict_sequential", 1000.0, 1000)];
        let cur = vec![row("wire_evict_sequential", 10.0, 900_000)]; // 100× worse
        let report = GateReport::compare(&base, &cur);
        assert!(!report.failed(), "{}", report.render());
    }

    #[test]
    fn missing_gated_bench_fails_and_new_bench_informs() {
        let base = vec![row("wire_node_w2", 1000.0, 1000)];
        let cur = vec![row("brand_new_bench", 5.0, 10)];
        let report = GateReport::compare(&base, &cur);
        assert!(report.failed());
        assert_eq!(report.rows[0].verdict, Verdict::MissingCurrent);
        assert_eq!(report.rows[1].verdict, Verdict::NewInCurrent);
        // The new bench is not fatal on its own.
        let only_new = GateReport::compare(&[], &cur);
        assert!(!only_new.failed());
    }

    #[test]
    fn boundary_is_strictly_beyond_fifteen_percent() {
        // p99 values in the ms range so the absolute jitter floor is not
        // the binding constraint — this test pins the relative boundary.
        let base = vec![row("wire_node_w1", 1000.0, 10_000_000)];
        // Exactly −15% / +15%: passes (the issue says "> 15%").
        let cur = vec![row("wire_node_w1", 850.0, 11_500_000)];
        assert!(!GateReport::compare(&base, &cur).failed());
        let cur = vec![row("wire_node_w1", 849.0, 10_000_000)];
        assert!(GateReport::compare(&base, &cur).failed());
        let cur = vec![row("wire_node_w1", 1000.0, 11_500_001)];
        assert!(GateReport::compare(&base, &cur).failed());
    }

    #[test]
    fn calibration_drift_normalizes_a_machine_wide_slowdown() {
        // Machine 30% slower in the fresh window (calibration 1000 → 700):
        // a gated bench also down 30% is drift, not a regression…
        let base = vec![
            row(CALIBRATION_BENCH, 1000.0, 0),
            row("wire_node_w4", 500.0, 0),
        ];
        let cur = vec![
            row(CALIBRATION_BENCH, 700.0, 0),
            row("wire_node_w4", 350.0, 0),
        ];
        let report = GateReport::compare(&base, &cur);
        assert!((report.drift - 0.7).abs() < 1e-9);
        assert!(!report.failed(), "{}", report.render());
        // …but a bench that lost far more than the drift still fails.
        let cur = vec![
            row(CALIBRATION_BENCH, 700.0, 0),
            row("wire_node_w4", 250.0, 0),
        ];
        assert!(GateReport::compare(&base, &cur).failed());
    }

    #[test]
    fn drift_is_clamped_and_defaults_to_unity() {
        // No calibration row on one side → no normalization.
        let base = vec![row("wire_node_w4", 1000.0, 0)];
        let cur = vec![
            row(CALIBRATION_BENCH, 1.0, 0),
            row("wire_node_w4", 1000.0, 0),
        ];
        assert_eq!(GateReport::compare(&base, &cur).drift, 1.0);
        // A calibration row claiming a 10× slowdown is clamped: the gated
        // bench may not hide an arbitrary regression behind it.
        let base = vec![
            row(CALIBRATION_BENCH, 1000.0, 0),
            row("wire_node_w4", 1000.0, 0),
        ];
        let cur = vec![
            row(CALIBRATION_BENCH, 100.0, 0),
            row("wire_node_w4", 300.0, 0),
        ];
        let report = GateReport::compare(&base, &cur);
        assert_eq!(report.drift, DRIFT_CLAMP.0);
        assert!(report.failed(), "{}", report.render());
    }

    #[test]
    fn trace_overhead_is_a_paired_in_run_check() {
        // Within 3%: passes and reports the signed delta.
        let run = vec![row(TRACED_PAIR_ROW, 1000.0, 0), row(TRACED_ROW, 985.0, 0)];
        let delta = trace_overhead(&run).expect("within tolerance").unwrap();
        assert!((delta + 0.015).abs() < 1e-9);
        // Tracing *faster* than plain (noise) also passes.
        let run = vec![row(TRACED_PAIR_ROW, 1000.0, 0), row(TRACED_ROW, 1010.0, 0)];
        assert!(trace_overhead(&run).is_ok());
        // Exactly −3% passes (the bar is "more than").
        let run = vec![row(TRACED_PAIR_ROW, 1000.0, 0), row(TRACED_ROW, 970.0, 0)];
        assert!(trace_overhead(&run).is_ok());
        // Beyond −3% fails with the delta in the message.
        let run = vec![row(TRACED_PAIR_ROW, 1000.0, 0), row(TRACED_ROW, 950.0, 0)];
        let err = trace_overhead(&run).unwrap_err();
        assert!(err.contains("5.0%"), "{err}");
        // Either row absent: nothing to check.
        assert_eq!(trace_overhead(&[row(TRACED_ROW, 950.0, 0)]), Ok(None));
        assert_eq!(trace_overhead(&[]), Ok(None));
    }

    #[test]
    fn report_roundtrips_through_the_json_codec() {
        use crate::perf::{parse_json, to_json};
        let base = vec![
            row("wire_node_w4", 123456.0, 4000),
            row("window_expiry_incremental", 9999.0, 800),
        ];
        let text = to_json(&base);
        let parsed = parse_json(&text).expect("parse baseline");
        let report = GateReport::compare(&parsed, &base);
        assert!(!report.failed(), "{}", report.render());
    }
}
