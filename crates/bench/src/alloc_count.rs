//! Counting global allocator for the zero-steady-state-allocation gate.
//!
//! The whole bench binary (and anything else linking `ecc_bench`, e.g.
//! `cargo xtask`) runs under a thin wrapper around [`System`] that counts
//! every `alloc`/`realloc`/`alloc_zeroed` call with one relaxed atomic
//! increment. The storage benches read [`allocation_count`] around their
//! timed region to measure — and after the slab-arena engine, *assert* —
//! how many global allocations a steady-state GET/PUT performs.
//!
//! Frees are deliberately not counted: the claim under test is "the hot
//! path never enters the allocator for new memory", and a free without a
//! matching count would let alloc/free pairs cancel to zero.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Global allocation counter; monotonically increasing for the process
/// lifetime. Readers diff two loads around a region of interest.
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// [`System`], plus one relaxed counter bump per allocation entry point.
pub struct CountingAlloc;

// SAFETY: every method delegates directly to `System` with the caller's
// layout/pointer unchanged; the only added behavior is a relaxed atomic
// increment, which cannot violate the GlobalAlloc contract.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Total global allocations since process start (relaxed read).
pub fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_are_counted() {
        let before = allocation_count();
        let v: Vec<u64> = Vec::with_capacity(32);
        std::hint::black_box(&v);
        drop(v);
        let after = allocation_count();
        assert!(after > before, "Vec::with_capacity must hit the counter");
    }

    #[test]
    fn reading_the_counter_does_not_allocate() {
        let before = allocation_count();
        for _ in 0..100 {
            std::hint::black_box(allocation_count());
        }
        // Other test threads may allocate concurrently, so only check the
        // single-threaded case loosely: the loop itself adds nothing when
        // run alone, and the counter stays monotone either way.
        assert!(allocation_count() >= before);
    }
}
