//! Drive zoo scenarios through the elastic cache under virtual time.
//!
//! This is the cloudsim leg of the scenario zoo: the same deterministic
//! `(step, op, key)` stream that `loadgen --scenario` replays over TCP is
//! fed to an in-process [`ElasticCache`] on a [`SimClock`], so elasticity
//! policies see millions of simulated queries in milliseconds of wall
//! time. Reads go through the query path (a miss charges the modelled
//! service time and populates), writes through the insert path, and step
//! boundaries end the cache's time slice — exactly the paper's
//! query-submission loop, generalized to the zoo.

use ecc_cloudsim::SimClock;
use ecc_core::{ElasticCache, Record, WindowConfig};
use ecc_workload::driver::Op;
use ecc_workload::scenario::Scenario;

use crate::{paper_cfg, write_csv, RECORD_BYTES};

/// Modelled uncached service cost per query, µs (the paper's ≈23 s
/// shoreline derivation). Scenario sims use one flat constant so the
/// summary isolates cache behaviour from per-key service variance.
pub const SCENARIO_UNCACHED_US: u64 = 23_000_000;

/// Aggregate outcome of one scenario simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSummary {
    /// Scenario name.
    pub name: String,
    /// Seed the event stream was generated from.
    pub seed: u64,
    /// Time steps simulated.
    pub steps: u64,
    /// Total events (reads + writes).
    pub events: u64,
    /// Write events.
    pub writes: u64,
    /// Read hits.
    pub hits: u64,
    /// Read misses.
    pub misses: u64,
    /// Records evicted by the sliding window.
    pub evictions: u64,
    /// Peak node count reached.
    pub nodes_max: usize,
    /// Node count at the end of the run.
    pub nodes_end: usize,
    /// Cumulative speedup over the uncached baseline.
    pub speedup: f64,
}

impl ScenarioSummary {
    /// Hit fraction over reads (0 when no reads).
    pub fn hit_rate(&self) -> f64 {
        let reads = self.hits + self.misses;
        if reads == 0 {
            0.0
        } else {
            self.hits as f64 / reads as f64
        }
    }
}

/// Simulate `steps` time steps of a scenario from `seed` on a fresh
/// elastic cache (paper configuration over the scenario's key space, with
/// the paper's m = 100 / α = 0.99 eviction window).
pub fn run_scenario_sim(sc: &Scenario, seed: u64, steps: u64) -> ScenarioSummary {
    let cfg = paper_cfg(
        sc.dist().space(),
        Some(WindowConfig {
            slices: 100,
            alpha: 0.99,
            threshold: None,
        }),
    );
    let mut cache = ElasticCache::with_clock(cfg, SimClock::new());

    let mut events = 0u64;
    let mut writes = 0u64;
    let mut nodes_max = cache.node_count();
    let mut cur_step = 0u64;
    for (step, op, key) in sc.events(seed, steps) {
        while cur_step < step {
            cache.end_time_step();
            cur_step += 1;
        }
        match op {
            Op::Read => {
                let _ = cache.query(key, SCENARIO_UNCACHED_US, || Record::filler(RECORD_BYTES));
            }
            Op::Write => {
                writes += 1;
                let _ = cache.insert(key, Record::filler(RECORD_BYTES));
            }
        }
        events += 1;
        nodes_max = nodes_max.max(cache.node_count());
    }
    while cur_step < steps {
        cache.end_time_step();
        cur_step += 1;
    }
    nodes_max = nodes_max.max(cache.node_count());

    let m = cache.metrics();
    ScenarioSummary {
        name: sc.name().to_string(),
        seed,
        steps,
        events,
        writes,
        hits: m.hits,
        misses: m.misses,
        evictions: m.evictions,
        nodes_max,
        nodes_end: cache.node_count(),
        speedup: m.speedup(),
    }
}

/// Stable column order for `results/scenarios.csv`.
pub const SCENARIO_CSV_HEADER: &str =
    "scenario,seed,steps,events,writes,hits,misses,hit_rate,evictions,nodes_max,nodes_end,speedup";

/// Render summaries as CSV rows in [`SCENARIO_CSV_HEADER`] order.
pub fn scenario_csv_rows(summaries: &[ScenarioSummary]) -> Vec<Vec<String>> {
    summaries
        .iter()
        .map(|s| {
            vec![
                s.name.clone(),
                s.seed.to_string(),
                s.steps.to_string(),
                s.events.to_string(),
                s.writes.to_string(),
                s.hits.to_string(),
                s.misses.to_string(),
                format!("{:.4}", s.hit_rate()),
                s.evictions.to_string(),
                s.nodes_max.to_string(),
                s.nodes_end.to_string(),
                format!("{:.3}", s.speedup),
            ]
        })
        .collect()
}

/// Run every zoo scenario at `seed` for `steps` (or each scenario's own
/// default horizon when `steps` is `None`) and write
/// `results/scenarios.csv`. Returns the summaries in registry order.
pub fn run_all_scenarios(seed: u64, steps: Option<u64>) -> std::io::Result<Vec<ScenarioSummary>> {
    let summaries: Vec<ScenarioSummary> = Scenario::all()
        .iter()
        .map(|sc| run_scenario_sim(sc, seed, steps.unwrap_or_else(|| sc.default_steps())))
        .collect();
    write_csv(
        "scenarios.csv",
        SCENARIO_CSV_HEADER,
        &scenario_csv_rows(&summaries),
    )?;
    Ok(summaries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_sim_is_deterministic_per_seed() {
        let sc = Scenario::by_name("shifting_hotset").expect("registered");
        let a = run_scenario_sim(&sc, 11, 12);
        let b = run_scenario_sim(&sc, 11, 12);
        assert_eq!(a, b);
        let c = run_scenario_sim(&sc, 12, 12);
        assert_ne!(a, c, "seed must matter");
    }

    #[test]
    fn reads_and_writes_are_routed() {
        let sc = Scenario::by_name("write_heavy").expect("registered");
        let s = run_scenario_sim(&sc, 3, 10);
        assert_eq!(s.events, sc.schedule().total_queries(10));
        assert!(s.writes > 0, "write_heavy produced no writes");
        assert_eq!(s.hits + s.misses + s.writes, s.events);
        assert!(s.nodes_end >= 1);
    }

    #[test]
    fn zipf_scenario_reuses_hot_keys() {
        let sc = Scenario::by_name("zipf_hot").expect("registered");
        let s = run_scenario_sim(&sc, 5, 20);
        assert!(
            s.hit_rate() > 0.3,
            "skewed reads should reuse the head: hit rate {}",
            s.hit_rate()
        );
        assert!(s.speedup > 1.0);
    }

    #[test]
    fn csv_rows_follow_the_header() {
        let sc = Scenario::by_name("paper_shoreline").expect("registered");
        let s = run_scenario_sim(&sc, 1, 5);
        let rows = scenario_csv_rows(&[s]);
        assert_eq!(rows.len(), 1);
        assert_eq!(
            rows[0].len(),
            SCENARIO_CSV_HEADER.split(',').count(),
            "row arity must match the header"
        );
        assert_eq!(rows[0][0], "paper_shoreline");
    }
}
