//! Shared experiment harness for the figure-reproduction binaries.
//!
//! Every binary in `src/bin/` regenerates one of the paper's figures (see
//! DESIGN.md §4 for the index). This library holds what they share: the
//! paper-constant cache configuration, the padded-record service adapter,
//! the eviction-experiment runner behind Figures 5–7, and small CSV/arg
//! helpers.

#![deny(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod alloc_count;
pub mod gate;
pub mod perf;
pub mod scenario;

use std::io::Write;
use std::path::{Path, PathBuf};

use ecc_core::{CacheConfig, ElasticCache, Record, StaticCache, WindowConfig};
use ecc_shoreline::service::ShorelineService;
use ecc_workload::driver::QueryStream;
use ecc_workload::keys::KeyDist;
use ecc_workload::schedule::RateSchedule;

/// Fixed wire size of one cached record in the figure experiments. The
/// paper's derived shorelines are "< 1 KB"; padding the serialized frame to
/// exactly 1 KiB makes node capacity an exact record count (capacity is
/// [`NODE_RECORDS`] × the record's charged slab footprint — see
/// EXPERIMENTS.md for how the 4096-record constant is recovered from the
/// paper).
pub const RECORD_BYTES: usize = 1024;

/// Records per node in the paper-scale experiments.
pub const NODE_RECORDS: u64 = 4096;

/// The paper's service, adapted to fixed-size records.
///
/// Derivations are memoized: the service is deterministic per key, so when
/// an evicted key misses again the harness reuses the already-computed
/// shoreline instead of re-running marching squares (only the *modelled*
/// 23 s is charged either way).
pub struct PaperService {
    svc: ShorelineService,
    memo: std::sync::Mutex<std::collections::HashMap<u64, Record>>,
}

impl PaperService {
    /// The Figure-3 service: 64 Ki key space, ≈ 23 s execution.
    pub fn new(seed: u64) -> Self {
        Self {
            svc: ShorelineService::paper_default(seed),
            memo: std::sync::Mutex::new(std::collections::HashMap::new()),
        }
    }

    /// Modelled uncached execution time for `key`.
    pub fn uncached_us(&self, key: u64) -> u64 {
        self.svc.exec_time_for(key)
    }

    /// Derive the record for `key`: a real marching-squares shoreline,
    /// padded to [`RECORD_BYTES`].
    pub fn record(&self, key: u64) -> Record {
        if let Some(r) = self.memo.lock().expect("memo lock").get(&key) {
            return r.clone();
        }
        let mut bytes = self.svc.execute_key(key).shoreline.to_bytes();
        bytes.resize(RECORD_BYTES, 0);
        let rec = Record::from_vec(bytes);
        self.memo
            .lock()
            .expect("memo lock")
            .insert(key, rec.clone());
        rec
    }
}

/// The paper-constant elastic-cache configuration over a given key space,
/// optionally with an eviction window.
pub fn paper_cfg(key_space: u64, window: Option<WindowConfig>) -> CacheConfig {
    let mut cfg = CacheConfig::paper_default();
    cfg.ring_range = key_space;
    // Records are charged their slab footprint, so sizing capacity in
    // footprint units keeps "a node holds exactly NODE_RECORDS records"
    // true under true-footprint accounting.
    cfg.node_capacity_bytes = NODE_RECORDS * ecc_core::slab::footprint(RECORD_BYTES);
    cfg.window = window;
    cfg
}

/// One reporting row of an eviction experiment (Figures 5–7).
#[derive(Debug, Clone)]
pub struct StepRow {
    /// 1-based time step.
    pub step: u64,
    /// Queries issued this step.
    pub queries: u64,
    /// Cache hits this step (the paper's "data reuse").
    pub hits: u64,
    /// Records evicted at this step's slice expiry.
    pub evictions: u64,
    /// Active nodes after the step.
    pub nodes: usize,
    /// Speedup over the uncached service within this step.
    pub step_speedup: f64,
    /// Cumulative speedup since the experiment began.
    pub cum_speedup: f64,
    /// Uncached (baseline) time accrued this step, µs.
    pub baseline_us: u64,
    /// Observed time accrued this step, µs.
    pub observed_us: u64,
}

/// Queries-weighted speedup over a window of rows ending at `end`
/// (exclusive), spanning up to `span` rows — the smoothed series the
/// paper's plots show.
pub fn smoothed_speedup(rows: &[StepRow], end: usize, span: usize) -> f64 {
    let lo = end.saturating_sub(span);
    let baseline: u64 = rows[lo..end].iter().map(|r| r.baseline_us).sum();
    let observed: u64 = rows[lo..end].iter().map(|r| r.observed_us).sum();
    if observed == 0 {
        1.0
    } else {
        baseline as f64 / observed as f64
    }
}

/// Run the §IV-C eviction/contraction experiment: 32 Ki keys, the
/// 50/250/50 rate schedule, window `m`, decay `alpha`, for `steps` time
/// steps. Returns one row per time step.
pub fn run_eviction_experiment(
    m: usize,
    alpha: f64,
    steps: u64,
    seed: u64,
    service: &PaperService,
) -> Vec<StepRow> {
    run_eviction_experiment_with_threshold(m, alpha, None, steps, seed, service)
}

/// [`run_eviction_experiment`] with an explicit eviction threshold `T_λ`
/// (`None` = the baseline `α^(m-1)`). Figure 7 fixes `T_λ` while sweeping
/// `α` — with the baseline threshold, `α` cancels out of the eviction
/// decision entirely (any in-window query scores `λ ≥ α^(m-1) = T_λ`).
pub fn run_eviction_experiment_with_threshold(
    m: usize,
    alpha: f64,
    threshold: Option<f64>,
    steps: u64,
    seed: u64,
    service: &PaperService,
) -> Vec<StepRow> {
    let key_space = 32 * 1024;
    let cfg = paper_cfg(
        key_space,
        Some(WindowConfig {
            slices: m,
            alpha,
            threshold,
        }),
    );
    run_eviction_with_config(cfg, steps, seed, service)
}

/// Run the eviction workload against an arbitrary cache configuration
/// (extension ablations: warm pools, proactive splits, adaptive windows).
pub fn run_eviction_with_config(
    cfg: CacheConfig,
    steps: u64,
    seed: u64,
    service: &PaperService,
) -> Vec<StepRow> {
    let key_space = cfg.ring_range;
    let mut cache = ElasticCache::new(cfg);
    let stream = QueryStream::new(
        RateSchedule::paper_eviction_phases(),
        KeyDist::uniform(key_space),
        seed,
    );
    let mut rows = Vec::with_capacity(steps as usize);
    let mut prev = *cache.metrics();
    let mut cur_step = 0u64;
    let mut flush = |cache: &mut ElasticCache, step: u64, prev: &mut ecc_core::Metrics| {
        cache.end_time_step();
        let now = *cache.metrics();
        let d = now.delta(prev);
        rows.push(StepRow {
            step: step + 1,
            queries: d.queries,
            hits: d.hits,
            evictions: d.evictions,
            nodes: cache.node_count(),
            step_speedup: d.speedup(),
            cum_speedup: now.speedup(),
            baseline_us: d.baseline_us,
            observed_us: d.observed_us,
        });
        *prev = now;
    };
    for (step, key) in stream.take_steps(steps) {
        while cur_step < step {
            flush(&mut cache, cur_step, &mut prev);
            cur_step += 1;
        }
        let uncached = service.uncached_us(key);
        cache.query(key, uncached, || service.record(key));
    }
    while cur_step < steps {
        flush(&mut cache, cur_step, &mut prev);
        cur_step += 1;
    }
    rows
}

/// Build the Figure-3 GBA cache (infinite window, 64 Ki keys).
pub fn fig3_gba_cache() -> ElasticCache {
    ElasticCache::new(paper_cfg(1 << 16, None))
}

/// Build a Figure-3 static baseline of `n` nodes.
pub fn fig3_static_cache(n: usize) -> StaticCache {
    StaticCache::new(&paper_cfg(1 << 16, None), n)
}

/// Scale factor for long experiments: `--scale X` on the command line or
/// the `ECC_SCALE` environment variable (default 1.0 = paper scale).
pub fn scale_arg() -> f64 {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--scale" {
            if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                return v;
            }
        } else if let Some(v) = a.strip_prefix("--scale=").and_then(|v| v.parse().ok()) {
            return v;
        }
    }
    std::env::var("ECC_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0)
}

/// Render a CSV document: the header line followed by one line per row.
/// Column order is exactly the header's — every writer goes through this
/// function, so reruns of the same experiment are line-diffable.
///
/// Returns an error if any row's field count differs from the header's
/// column count (a silent arity mismatch is how columns drift).
pub fn csv_text(header: &str, rows: &[Vec<String>]) -> std::io::Result<String> {
    let cols = header.split(',').count();
    let mut out = String::with_capacity(rows.len() * 32 + header.len());
    out.push_str(header);
    out.push('\n');
    for (i, row) in rows.iter().enumerate() {
        if row.len() != cols {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("csv row {i} has {} fields, header has {cols}", row.len()),
            ));
        }
        out.push_str(&row.join(","));
        out.push('\n');
    }
    Ok(out)
}

/// Write a CSV file under `results/`, creating the directory as needed.
/// Returns the written path; announcing it is the caller's job (library
/// code is print-free under the `no-print` lint).
pub fn write_csv(name: &str, header: &str, rows: &[Vec<String>]) -> std::io::Result<PathBuf> {
    let text = csv_text(header, rows)?;
    let dir = Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path)?;
    f.write_all(text.as_bytes())?;
    Ok(path)
}

/// The Figure-5 CSV header for a set of window sizes, in sweep order:
/// `step,m<w>_speedup,m<w>_nodes,…`.
pub fn fig5_header(windows: &[usize]) -> String {
    let mut h = String::from("step");
    for m in windows {
        h.push_str(&format!(",m{m}_speedup,m{m}_nodes"));
    }
    h
}

/// Build the Figure-5 CSV rows: every `report_every` steps, the 10-step
/// smoothed speedup and node count of each window's run, in the order the
/// runs are given. Shared by the `fig5_window_speedup` binary and the
/// golden-file test, so the committed CSV and the regenerated one come
/// from one code path.
pub fn fig5_rows(all: &[(usize, Vec<StepRow>)], steps: u64, report_every: u64) -> Vec<Vec<String>> {
    let mut rows_csv = Vec::new();
    for i in (0..steps as usize).step_by(report_every.max(1) as usize) {
        let mut csv = vec![(i + 1).to_string()];
        for (_, rows) in all {
            let r = &rows[i];
            let smooth = smoothed_speedup(rows, i + 1, 10);
            csv.push(format!("{smooth:.4}"));
            csv.push(r.nodes.to_string());
        }
        rows_csv.push(csv);
    }
    rows_csv
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_service_pads_records() {
        let s = PaperService::new(1);
        assert_eq!(s.record(123).len(), RECORD_BYTES);
        let t = s.uncached_us(123);
        assert!((21_000_000..=25_000_000).contains(&t));
    }

    #[test]
    fn paper_cfg_capacity_is_4096_records() {
        let cfg = paper_cfg(1 << 16, None);
        assert_eq!(
            cfg.node_capacity_bytes / ecc_core::slab::footprint(RECORD_BYTES),
            4096
        );
        assert_eq!(cfg.ring_range, 1 << 16);
        cfg.validate();
    }

    #[test]
    fn eviction_runner_produces_one_row_per_step() {
        let service = PaperService::new(3);
        let rows = run_eviction_experiment(5, 0.99, 20, 7, &service);
        assert_eq!(rows.len(), 20);
        assert_eq!(rows[0].step, 1);
        assert_eq!(rows[0].queries, 50, "phase 1 rate is 50 q/step");
        assert!(rows.iter().all(|r| r.nodes >= 1));
    }

    #[test]
    fn smoothed_speedup_weights_by_time_not_steps() {
        let mk = |baseline: u64, observed: u64| StepRow {
            step: 0,
            queries: 0,
            hits: 0,
            evictions: 0,
            nodes: 1,
            step_speedup: 0.0,
            cum_speedup: 0.0,
            baseline_us: baseline,
            observed_us: observed,
        };
        // One heavy step (speedup 1) and one light step (speedup 10):
        // the window speedup is time-weighted, not the mean of 1 and 10.
        let rows = vec![mk(1000, 1000), mk(100, 10)];
        let s = smoothed_speedup(&rows, 2, 10);
        assert!((s - 1100.0 / 1010.0).abs() < 1e-9);
        // Window of 1 sees only the last row.
        assert!((smoothed_speedup(&rows, 2, 1) - 10.0).abs() < 1e-9);
        // Empty/observedless windows degrade to 1.
        assert_eq!(smoothed_speedup(&rows, 0, 5), 1.0);
    }

    #[test]
    fn eviction_runner_is_deterministic() {
        let service = PaperService::new(3);
        let a = run_eviction_experiment(5, 0.99, 10, 7, &service);
        let b = run_eviction_experiment(5, 0.99, 10, 7, &service);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!((x.queries, x.hits, x.nodes), (y.queries, y.hits, y.nodes));
        }
    }
}
