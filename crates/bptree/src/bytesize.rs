//! Value size measurement for the tree's `||n||` accounting.

/// Types whose stored size (in bytes) the tree can account for.
///
/// The paper's overflow test (`||n|| + sizeof(v) < ⌈n⌉`, Algorithm 1 line 5)
/// needs a `sizeof` for every cached value. Implementations should return
/// the *payload* size — the number of bytes the record occupies in cache
/// memory — and must be stable for a given value (the tree subtracts the
/// same amount on removal that it added on insertion).
pub trait ByteSize {
    /// Size of this value in bytes.
    fn byte_size(&self) -> usize;
}

macro_rules! impl_bytesize_prim {
    ($($t:ty),*) => {
        $(impl ByteSize for $t {
            #[inline]
            fn byte_size(&self) -> usize {
                std::mem::size_of::<$t>()
            }
        })*
    };
}

impl_bytesize_prim!(
    u8,
    u16,
    u32,
    u64,
    u128,
    usize,
    i8,
    i16,
    i32,
    i64,
    i128,
    isize,
    f32,
    f64,
    bool,
    char,
    ()
);

impl ByteSize for String {
    #[inline]
    fn byte_size(&self) -> usize {
        self.len()
    }
}

impl ByteSize for &str {
    #[inline]
    fn byte_size(&self) -> usize {
        self.len()
    }
}

impl<T: ByteSize> ByteSize for Vec<T> {
    #[inline]
    fn byte_size(&self) -> usize {
        self.iter().map(ByteSize::byte_size).sum()
    }
}

impl<T: ByteSize> ByteSize for Box<T> {
    #[inline]
    fn byte_size(&self) -> usize {
        (**self).byte_size()
    }
}

impl<T: ByteSize> ByteSize for std::sync::Arc<T> {
    #[inline]
    fn byte_size(&self) -> usize {
        (**self).byte_size()
    }
}

impl<T: ByteSize> ByteSize for Option<T> {
    #[inline]
    fn byte_size(&self) -> usize {
        self.as_ref().map_or(0, ByteSize::byte_size)
    }
}

impl<A: ByteSize, B: ByteSize> ByteSize for (A, B) {
    #[inline]
    fn byte_size(&self) -> usize {
        self.0.byte_size() + self.1.byte_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_report_their_width() {
        assert_eq!(0u8.byte_size(), 1);
        assert_eq!(0u64.byte_size(), 8);
        assert_eq!(1.5f64.byte_size(), 8);
        assert_eq!(true.byte_size(), 1);
    }

    #[test]
    fn containers_sum_elements() {
        assert_eq!(vec![0u8; 100].byte_size(), 100);
        assert_eq!(vec![0u32; 5].byte_size(), 20);
        assert_eq!("hello".to_string().byte_size(), 5);
        assert_eq!(Some(7u64).byte_size(), 8);
        assert_eq!(None::<u64>.byte_size(), 0);
        assert_eq!((1u32, vec![0u8; 3]).byte_size(), 7);
    }

    #[test]
    fn smart_pointers_delegate() {
        assert_eq!(Box::new(9u16).byte_size(), 2);
        assert_eq!(std::sync::Arc::new(vec![1u8, 2, 3]).byte_size(), 3);
    }
}
