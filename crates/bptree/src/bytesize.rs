//! Value size measurement for the tree's `||n||` accounting.

/// Types whose stored size (in bytes) the tree can account for.
///
/// The paper's overflow test (`||n|| + sizeof(v) < ⌈n⌉`, Algorithm 1 line 5)
/// needs a `sizeof` for every cached value. Implementations should return
/// the *payload* size — the number of bytes the record occupies in cache
/// memory — and must be stable for a given value (the tree subtracts the
/// same amount on removal that it added on insertion).
pub trait ByteSize {
    /// Size of this value in bytes.
    fn byte_size(&self) -> usize;
}

macro_rules! impl_bytesize_prim {
    ($($t:ty),*) => {
        $(impl ByteSize for $t {
            #[inline]
            fn byte_size(&self) -> usize {
                std::mem::size_of::<$t>()
            }
        })*
    };
}

impl_bytesize_prim!(
    u8,
    u16,
    u32,
    u64,
    u128,
    usize,
    i8,
    i16,
    i32,
    i64,
    i128,
    isize,
    f32,
    f64,
    bool,
    char,
    ()
);

impl ByteSize for String {
    /// Struct header (ptr/len/capacity) plus the full reserved buffer —
    /// the real resident footprint, not just the initialized length.
    #[inline]
    fn byte_size(&self) -> usize {
        std::mem::size_of::<Self>() + self.capacity()
    }
}

impl ByteSize for &str {
    #[inline]
    fn byte_size(&self) -> usize {
        self.len()
    }
}

impl<T: ByteSize> ByteSize for Vec<T> {
    /// Struct header (ptr/len/capacity), the summed element sizes, and the
    /// reserved-but-unused capacity slack. The old len-sum silently
    /// under-reported footprint by the header plus whatever the growth
    /// policy over-allocated (see the delta-pinning test below).
    #[inline]
    fn byte_size(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.iter().map(ByteSize::byte_size).sum::<usize>()
            + (self.capacity() - self.len()) * std::mem::size_of::<T>()
    }
}

impl<T: ByteSize> ByteSize for Box<T> {
    #[inline]
    fn byte_size(&self) -> usize {
        (**self).byte_size()
    }
}

impl<T: ByteSize> ByteSize for std::sync::Arc<T> {
    #[inline]
    fn byte_size(&self) -> usize {
        (**self).byte_size()
    }
}

impl<T: ByteSize> ByteSize for Option<T> {
    #[inline]
    fn byte_size(&self) -> usize {
        self.as_ref().map_or(0, ByteSize::byte_size)
    }
}

impl<A: ByteSize, B: ByteSize> ByteSize for (A, B) {
    #[inline]
    fn byte_size(&self) -> usize {
        self.0.byte_size() + self.1.byte_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_report_their_width() {
        assert_eq!(0u8.byte_size(), 1);
        assert_eq!(0u64.byte_size(), 8);
        assert_eq!(1.5f64.byte_size(), 8);
        assert_eq!(true.byte_size(), 1);
    }

    /// `vec![x; n]` allocates capacity == len, so these footprints are
    /// exactly header + elements.
    #[test]
    fn containers_report_header_plus_buffer() {
        let hdr = std::mem::size_of::<Vec<u8>>();
        assert_eq!(vec![0u8; 100].byte_size(), hdr + 100);
        assert_eq!(vec![0u32; 5].byte_size(), hdr + 20);
        assert_eq!("hello".to_string().byte_size(), hdr + 5);
        assert_eq!(Some(7u64).byte_size(), 8);
        assert_eq!(None::<u64>.byte_size(), 0);
        assert_eq!((1u32, vec![0u8; 3]).byte_size(), 4 + hdr + 3);
        // Borrowed strings have no owned buffer: payload length only.
        assert_eq!("hello".byte_size(), 5);
    }

    /// Pins the delta between the fixed accounting and the old len-sum:
    /// the struct header plus one element-size per slot of reserved slack.
    /// This is exactly what the old numbers silently under-reported.
    #[test]
    fn footprint_delta_vs_len_sum_is_header_plus_slack() {
        let hdr = std::mem::size_of::<Vec<u64>>();
        let mut v: Vec<u64> = Vec::with_capacity(32);
        v.extend_from_slice(&[1, 2, 3, 4]);
        let len_sum: usize = v.iter().map(ByteSize::byte_size).sum();
        assert_eq!(len_sum, 32, "old accounting: element sum only");
        let slack = (v.capacity() - v.len()) * std::mem::size_of::<u64>();
        assert_eq!(slack, 28 * 8);
        assert_eq!(v.byte_size() - len_sum, hdr + slack);
        // An exactly-sized Vec still carries the header delta.
        let tight = vec![7u8; 10];
        assert_eq!(tight.capacity(), tight.len());
        assert_eq!(tight.byte_size() - 10, std::mem::size_of::<Vec<u8>>());
        // String follows the same rule.
        let mut s = String::with_capacity(16);
        s.push_str("abc");
        assert_eq!(
            s.byte_size(),
            std::mem::size_of::<String>() + 16,
            "full reserved buffer, not just the 3 initialized bytes"
        );
    }

    #[test]
    fn smart_pointers_delegate() {
        assert_eq!(Box::new(9u16).byte_size(), 2);
        let hdr = std::mem::size_of::<Vec<u8>>();
        assert_eq!(std::sync::Arc::new(vec![1u8, 2, 3]).byte_size(), hdr + 3);
    }
}
