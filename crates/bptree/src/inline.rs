//! Fixed-capacity inline vector backing B+-tree node storage.
//!
//! [`InlineVec<T, N>`] stores up to `N` elements directly in the struct
//! (no heap indirection), so a `Vec<Node>` slab of nodes built from it is
//! one genuinely contiguous arena: node splits, merges, and rebalances
//! shuffle bytes inside the slab instead of calling the global allocator,
//! and leaf sweeps walk dense memory.
//!
//! # Safety argument (see DESIGN.md §17)
//!
//! All `unsafe` in this crate is confined to this module, behind a safe
//! API, and guarded by one invariant: **elements `0..len` are always
//! initialized, elements `len..N` are always logically uninitialized.**
//!
//! * Every write path (`push`, `insert`, `append`, `split_off`) asserts
//!   the result fits in `N` *before* touching the buffer, then adjusts
//!   `len` only after the elements it covers are initialized.
//! * Every removal path (`pop`, `remove`, `truncate_into`, `clear`,
//!   `Drop`) moves elements out or drops them in place *before* (or
//!   exactly when) shrinking `len`, so no initialized element is leaked
//!   and no uninitialized slot is ever read or dropped.
//! * Shifts use `ptr::copy` (memmove) over `MaybeUninit` slots; the
//!   source slot left behind is treated as uninitialized from then on —
//!   it is only ever overwritten, never read or dropped.
//!
//! `len` is a `u16`, bounding `N` at 65 535 — far above any plausible
//! B+-tree order — and keeping the header small next to the payload.

#![allow(unsafe_code)]

use std::fmt;
use std::mem::MaybeUninit;
use std::ops::{Deref, DerefMut};
use std::ptr;

/// A fixed-capacity, heap-free vector of at most `N` elements.
pub struct InlineVec<T, const N: usize> {
    buf: [MaybeUninit<T>; N],
    len: u16,
}

impl<T, const N: usize> InlineVec<T, N> {
    /// An empty inline vector. Free: no element is initialized yet.
    pub fn new() -> Self {
        const {
            assert!(N <= u16::MAX as usize, "InlineVec capacity exceeds u16 len");
        }
        Self {
            // SAFETY: an array of `MaybeUninit` needs no initialization.
            buf: unsafe { MaybeUninit::uninit().assume_init() },
            len: 0,
        }
    }

    /// Number of initialized elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether no elements are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The fixed capacity `N`.
    #[inline]
    pub fn capacity(&self) -> usize {
        N
    }

    /// Append an element.
    ///
    /// # Panics
    ///
    /// Panics if the vector is full — tree code sizes `N` so that the
    /// transient pre-split occupancy (`order` keys, `order + 1` children)
    /// always fits.
    #[inline]
    pub fn push(&mut self, value: T) {
        let len = self.len();
        assert!(len < N, "InlineVec overflow: capacity {N}");
        // SAFETY: index `len` is in bounds (checked above) and currently
        // uninitialized; after the write we extend `len` over it.
        unsafe {
            self.buf.get_unchecked_mut(len).write(value);
        }
        self.len += 1;
    }

    /// Remove and return the last element.
    #[inline]
    pub fn pop(&mut self) -> Option<T> {
        if self.len == 0 {
            return None;
        }
        self.len -= 1;
        // SAFETY: index `len` was initialized (it was `len - 1` before the
        // decrement); reading it out transfers ownership and the slot is
        // uninitialized from here on.
        Some(unsafe { self.buf.get_unchecked(self.len()).assume_init_read() })
    }

    /// Insert `value` at `index`, shifting later elements right.
    ///
    /// # Panics
    ///
    /// Panics if `index > len` or the vector is full.
    pub fn insert(&mut self, index: usize, value: T) {
        let len = self.len();
        assert!(index <= len, "InlineVec insert index {index} > len {len}");
        assert!(len < N, "InlineVec overflow: capacity {N}");
        let base = self.buf.as_mut_ptr();
        // SAFETY: `index <= len < N`, so both `index` and `index + 1` stay
        // within the buffer and the shifted range `index..len` is
        // initialized; after the memmove slot `index` is logically
        // uninitialized and is immediately overwritten.
        unsafe {
            ptr::copy(base.add(index), base.add(index + 1), len - index);
            (*base.add(index)).write(value);
        }
        self.len += 1;
    }

    /// Remove and return the element at `index`, shifting later elements
    /// left.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    pub fn remove(&mut self, index: usize) -> T {
        let len = self.len();
        assert!(index < len, "InlineVec remove index {index} >= len {len}");
        let base = self.buf.as_mut_ptr();
        // SAFETY: slot `index` is initialized; after reading it out, the
        // memmove re-fills `index..len-1` from the initialized suffix and
        // the vacated last slot is covered by the `len` decrement.
        unsafe {
            let value = (*base.add(index)).assume_init_read();
            ptr::copy(base.add(index + 1), base.add(index), len - index - 1);
            self.len -= 1;
            value
        }
    }

    /// Split off and return the tail `mid..len`, leaving `0..mid` in
    /// place — the inline analogue of `Vec::split_off`.
    ///
    /// # Panics
    ///
    /// Panics if `mid > len`.
    pub fn split_off(&mut self, mid: usize) -> Self {
        let len = self.len();
        assert!(mid <= len, "InlineVec split_off mid {mid} > len {len}");
        let mut tail = Self::new();
        // SAFETY: `mid..len` is initialized in `self` and disjoint from
        // `tail`'s fresh buffer; after the copy, ownership of those
        // elements transfers to `tail` (self.len shrinks to `mid`, so the
        // source slots become logically uninitialized, never dropped).
        unsafe {
            ptr::copy_nonoverlapping(self.buf.as_ptr().add(mid), tail.buf.as_mut_ptr(), len - mid);
        }
        tail.len = (len - mid) as u16;
        self.len = mid as u16;
        tail
    }

    /// Move every element of `other` onto the end of `self`, leaving
    /// `other` empty — the inline analogue of `Vec::append`.
    ///
    /// # Panics
    ///
    /// Panics if the combined length exceeds `N`.
    pub fn append(&mut self, other: &mut Self) {
        let len = self.len();
        let olen = other.len();
        assert!(len + olen <= N, "InlineVec overflow: capacity {N}");
        // SAFETY: `other`'s `0..olen` is initialized and the destination
        // range `len..len + olen` fits (checked above); ownership moves to
        // `self`, and `other.len = 0` marks the source uninitialized.
        unsafe {
            ptr::copy_nonoverlapping(other.buf.as_ptr(), self.buf.as_mut_ptr().add(len), olen);
        }
        self.len = (len + olen) as u16;
        other.len = 0;
    }

    /// Drop every element.
    pub fn clear(&mut self) {
        let len = self.len();
        self.len = 0;
        // SAFETY: `0..len` was initialized; `len` is already zeroed so a
        // panicking `Drop` impl cannot cause a double drop.
        unsafe {
            ptr::drop_in_place(ptr::slice_from_raw_parts_mut(
                self.buf.as_mut_ptr() as *mut T,
                len,
            ));
        }
    }
}

impl<T, const N: usize> Drop for InlineVec<T, N> {
    fn drop(&mut self) {
        self.clear();
    }
}

impl<T, const N: usize> Default for InlineVec<T, N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T, const N: usize> Deref for InlineVec<T, N> {
    type Target = [T];

    #[inline]
    fn deref(&self) -> &[T] {
        // SAFETY: `0..len` is initialized (module invariant) and
        // `MaybeUninit<T>` is layout-compatible with `T`.
        unsafe { std::slice::from_raw_parts(self.buf.as_ptr() as *const T, self.len()) }
    }
}

impl<T, const N: usize> DerefMut for InlineVec<T, N> {
    #[inline]
    fn deref_mut(&mut self) -> &mut [T] {
        // SAFETY: as in `Deref`; exclusive access via `&mut self`.
        unsafe { std::slice::from_raw_parts_mut(self.buf.as_mut_ptr() as *mut T, self.len()) }
    }
}

impl<T: Clone, const N: usize> Clone for InlineVec<T, N> {
    fn clone(&self) -> Self {
        let mut out = Self::new();
        for item in self.iter() {
            out.push(item.clone());
        }
        out
    }
}

impl<T: fmt::Debug, const N: usize> fmt::Debug for InlineVec<T, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

impl<T: PartialEq, const N: usize> PartialEq for InlineVec<T, N> {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl<'a, T, const N: usize> IntoIterator for &'a InlineVec<T, N> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::rc::Rc;

    #[test]
    fn push_pop_insert_remove_match_vec_semantics() {
        let mut iv: InlineVec<u64, 8> = InlineVec::new();
        let mut v: Vec<u64> = Vec::new();
        assert!(iv.is_empty());
        for x in [5u64, 1, 9, 3] {
            iv.push(x);
            v.push(x);
        }
        iv.insert(1, 7);
        v.insert(1, 7);
        assert_eq!(&iv[..], &v[..]);
        assert_eq!(iv.remove(2), v.remove(2));
        assert_eq!(iv.pop(), v.pop());
        assert_eq!(&iv[..], &v[..]);
        assert_eq!(iv.len(), v.len());
    }

    #[test]
    fn split_off_and_append_roundtrip() {
        let mut iv: InlineVec<u32, 10> = InlineVec::new();
        for x in 0..7 {
            iv.push(x);
        }
        let mut tail = iv.split_off(3);
        assert_eq!(&iv[..], &[0, 1, 2]);
        assert_eq!(&tail[..], &[3, 4, 5, 6]);
        iv.append(&mut tail);
        assert_eq!(&iv[..], &[0, 1, 2, 3, 4, 5, 6]);
        assert!(tail.is_empty());
        // Split at both extremes.
        let all = iv.split_off(0);
        assert!(iv.is_empty());
        assert_eq!(all.len(), 7);
        let mut all = all;
        let none = all.split_off(7);
        assert!(none.is_empty());
        assert_eq!(all.len(), 7);
    }

    #[test]
    fn slice_view_supports_search_and_windows() {
        let mut iv: InlineVec<u64, 16> = InlineVec::new();
        for x in [2u64, 4, 6, 8] {
            iv.push(x);
        }
        assert_eq!(iv.binary_search(&6), Ok(2));
        assert_eq!(iv.binary_search(&5), Err(2));
        assert_eq!(iv.partition_point(|&x| x <= 4), 2);
        assert!(iv.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(iv.first(), Some(&2));
        assert_eq!(iv.last(), Some(&8));
        iv[0] = 1;
        assert_eq!(iv[0], 1);
    }

    #[test]
    fn drops_exactly_the_initialized_prefix() {
        let token = Rc::new(());
        {
            let mut iv: InlineVec<Rc<()>, 8> = InlineVec::new();
            for _ in 0..5 {
                iv.push(Rc::clone(&token));
            }
            assert_eq!(Rc::strong_count(&token), 6);
            drop(iv.pop());
            assert_eq!(Rc::strong_count(&token), 5);
            drop(iv.remove(0));
            assert_eq!(Rc::strong_count(&token), 4);
            let tail = iv.split_off(1);
            assert_eq!(tail.len(), 2);
            drop(tail);
            assert_eq!(Rc::strong_count(&token), 2);
        }
        // Dropping the vec drops the remaining element; nothing leaks and
        // nothing double-drops.
        assert_eq!(Rc::strong_count(&token), 1);
    }

    #[test]
    fn clear_drops_and_take_leaves_empty() {
        let token = Rc::new(());
        let mut iv: InlineVec<Rc<()>, 4> = InlineVec::new();
        iv.push(Rc::clone(&token));
        iv.push(Rc::clone(&token));
        iv.clear();
        assert_eq!(Rc::strong_count(&token), 1);
        iv.push(Rc::clone(&token));
        let taken = std::mem::take(&mut iv);
        assert!(iv.is_empty());
        assert_eq!(taken.len(), 1);
    }

    #[test]
    fn clone_is_deep() {
        let mut iv: InlineVec<String, 4> = InlineVec::new();
        iv.push("a".to_string());
        iv.push("b".to_string());
        let copy = iv.clone();
        assert_eq!(iv, copy);
        drop(iv);
        assert_eq!(&copy[..], &["a".to_string(), "b".to_string()]);
    }

    #[test]
    #[should_panic(expected = "InlineVec overflow")]
    fn push_past_capacity_panics() {
        let mut iv: InlineVec<u8, 2> = InlineVec::new();
        iv.push(1);
        iv.push(2);
        iv.push(3);
    }

    #[test]
    #[should_panic(expected = "InlineVec overflow")]
    fn append_past_capacity_panics() {
        let mut a: InlineVec<u8, 3> = InlineVec::new();
        a.push(1);
        a.push(2);
        let mut b: InlineVec<u8, 3> = InlineVec::new();
        b.push(3);
        b.push(4);
        a.append(&mut b);
    }
}
