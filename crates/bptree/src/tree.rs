//! The slab-allocated B+-tree with inline node storage.

use std::fmt;
use std::ops::{Bound, RangeBounds};

use crate::bytesize::ByteSize;
use crate::inline::InlineVec;

/// Sentinel index meaning "no node".
const NIL: u32 = u32::MAX;

/// Default inline node capacity: supports orders up to 64 (the workspace
/// production order), since internal nodes transiently hold `order + 1`
/// children between insert and split.
pub const DEFAULT_NODE_CAP: usize = 65;

/// Deepest descent the removal path tracks inline. Minimum branching is 2
/// (a root may have 2 children), and node indices are `u32`, so no
/// reachable tree exceeds 33 levels; 64 leaves slack for pathological
/// shapes without touching the heap.
const MAX_DEPTH: usize = 64;

/// A node slot in the slab. Keys, values, and child indices live inline
/// ([`InlineVec`]), so the `Vec<Node>` slab is one contiguous arena and
/// node mutations never call the global allocator.
#[derive(Debug)]
enum Node<K, V, const CAP: usize> {
    /// Routing node: `children.len() == keys.len() + 1`; child `i` holds
    /// keys `k` with `keys[i-1] <= k < keys[i]`.
    Internal {
        keys: InlineVec<K, CAP>,
        children: InlineVec<u32, CAP>,
    },
    /// Data node; leaves form a doubly linked, key-sorted list.
    Leaf {
        keys: InlineVec<K, CAP>,
        vals: InlineVec<V, CAP>,
        prev: u32,
        next: u32,
    },
    /// Recycled slot on the free list.
    Free,
}

/// A B+-tree mapping ordered keys to values, with linked leaves and O(1)
/// byte-size accounting. See the [crate docs](crate) for motivation.
///
/// `order` is the maximum number of children of an internal node; leaves
/// hold at most `order - 1` records. Minimum occupancy follows the textbook
/// rules (`⌈order/2⌉` children, `⌊(order-1)/2⌋` leaf records), so the tree
/// stays balanced under any delete sequence.
///
/// `CAP` is the compile-time inline capacity of each node's key/value/
/// child arrays; it must satisfy `order + 1 <= CAP` (internal nodes hold
/// `order + 1` children for an instant before splitting). The default
/// covers every order up to [`DEFAULT_NODE_CAP`]` - 1 = 64`; wider trees
/// pick a bigger `CAP` explicitly, e.g. `BPlusTree::<u64, u64, 130>::new(128)`.
pub struct BPlusTree<K, V, const CAP: usize = DEFAULT_NODE_CAP> {
    slab: Vec<Node<K, V, CAP>>,
    free: Vec<u32>,
    root: u32,
    /// Leftmost leaf — the head of the leaf chain.
    head: u32,
    order: usize,
    len: usize,
    bytes: u64,
}

impl<K: Ord + Clone, V: ByteSize, const CAP: usize> BPlusTree<K, V, CAP> {
    /// Create an empty tree with the given branching factor.
    ///
    /// # Panics
    ///
    /// Panics if `order < 4` (smaller orders cannot satisfy the occupancy
    /// rules during rebalancing) or if `order + 1 > CAP` (the node arrays
    /// could not hold the transient pre-split occupancy).
    pub fn new(order: usize) -> Self {
        assert!(order >= 4, "B+-tree order must be at least 4");
        assert!(
            order < CAP,
            "B+-tree order {order} needs inline node capacity {}, but CAP = {CAP}",
            order + 1
        );
        let root = Node::Leaf {
            keys: InlineVec::new(),
            vals: InlineVec::new(),
            prev: NIL,
            next: NIL,
        };
        let slab = vec![root]; // xtask: allow(no-global-alloc-in-hot-path) — one-time root alloc at construction
        Self {
            slab,
            free: Vec::with_capacity(0),
            root: 0,
            head: 0,
            order,
            len: 0,
            bytes: 0,
        }
    }

    /// Number of records stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree holds no records.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total bytes of stored values (`||n||` in the paper's notation).
    #[inline]
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// The configured branching factor.
    #[inline]
    pub fn order(&self) -> usize {
        self.order
    }

    #[inline]
    fn leaf_max(&self) -> usize {
        self.order - 1
    }

    #[inline]
    fn leaf_min(&self) -> usize {
        (self.order - 1) / 2
    }

    #[inline]
    fn internal_min_children(&self) -> usize {
        self.order.div_ceil(2)
    }

    // ---------------------------------------------------------- allocation

    fn alloc(&mut self, node: Node<K, V, CAP>) -> u32 {
        if let Some(idx) = self.free.pop() {
            self.slab[idx as usize] = node;
            idx
        } else {
            let idx = self.slab.len() as u32;
            self.slab.push(node);
            idx
        }
    }

    fn dealloc(&mut self, idx: u32) {
        self.slab[idx as usize] = Node::Free;
        self.free.push(idx);
    }

    // -------------------------------------------------------------- lookup

    /// Index of the child of an internal node that covers `key`.
    #[inline]
    fn child_for(keys: &[K], key: &K) -> usize {
        keys.partition_point(|s| s <= key)
    }

    /// Descend to the leaf that would contain `key`.
    fn find_leaf(&self, key: &K) -> u32 {
        let mut idx = self.root;
        loop {
            match &self.slab[idx as usize] {
                Node::Internal { keys, children } => {
                    idx = children[Self::child_for(keys, key)];
                }
                Node::Leaf { .. } => return idx,
                Node::Free => unreachable!("descended into freed node"),
            }
        }
    }

    /// Look up `key`.
    pub fn get(&self, key: &K) -> Option<&V> {
        let leaf = self.find_leaf(key);
        match &self.slab[leaf as usize] {
            Node::Leaf { keys, vals, .. } => keys.binary_search(key).ok().map(|pos| &vals[pos]),
            _ => unreachable!(),
        }
    }

    /// Mutable lookup. Note: callers must not change the value's
    /// [`ByteSize`] through this reference; use `insert` to replace a value
    /// so the byte accounting stays correct.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        let leaf = self.find_leaf(key);
        match &mut self.slab[leaf as usize] {
            Node::Leaf { keys, vals, .. } => match keys.binary_search(key) {
                Ok(pos) => Some(&mut vals[pos]),
                Err(_) => None,
            },
            _ => unreachable!(),
        }
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Smallest key, if any.
    pub fn first_key(&self) -> Option<&K> {
        match &self.slab[self.head as usize] {
            Node::Leaf { keys, .. } => keys.first(),
            _ => unreachable!(),
        }
    }

    /// Largest key, if any.
    pub fn last_key(&self) -> Option<&K> {
        let mut idx = self.root;
        loop {
            match &self.slab[idx as usize] {
                Node::Internal { children, .. } => idx = *children.last().unwrap(),
                Node::Leaf { keys, .. } => return keys.last(),
                Node::Free => unreachable!(),
            }
        }
    }

    // ------------------------------------------------------------ insertion

    /// Insert a record, returning the previous value for `key` if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let add = value.byte_size() as u64;
        let result = self.insert_rec(self.root, key, value);
        match result {
            InsertOutcome::Replaced(old) => {
                self.bytes = self.bytes - old.byte_size() as u64 + add;
                Some(old)
            }
            InsertOutcome::Inserted(split) => {
                self.len += 1;
                self.bytes += add;
                if let Some((sep, right)) = split {
                    // Root split: grow the tree by one level.
                    let old_root = self.root;
                    let mut keys = InlineVec::new();
                    keys.push(sep);
                    let mut children = InlineVec::new();
                    children.push(old_root);
                    children.push(right);
                    self.root = self.alloc(Node::Internal { keys, children });
                }
                None
            }
        }
    }

    fn insert_rec(&mut self, idx: u32, key: K, value: V) -> InsertOutcome<K, V> {
        // Find the child to descend into without holding a borrow.
        let child = match &self.slab[idx as usize] {
            Node::Internal { keys, children } => Some(children[Self::child_for(keys, &key)]),
            Node::Leaf { .. } => None,
            Node::Free => unreachable!(),
        };

        if let Some(child_idx) = child {
            let outcome = self.insert_rec(child_idx, key, value);
            if let InsertOutcome::Inserted(Some((sep, new_right))) = outcome {
                // Child split: thread the separator into this node.
                let needs_split = {
                    let Node::Internal { keys, children } = &mut self.slab[idx as usize] else {
                        unreachable!()
                    };
                    let pos = Self::child_for(keys, &sep);
                    keys.insert(pos, sep);
                    children.insert(pos + 1, new_right);
                    children.len() > self.order
                };
                let split = if needs_split {
                    Some(self.split_internal(idx))
                } else {
                    None
                };
                InsertOutcome::Inserted(split)
            } else {
                outcome
            }
        } else {
            // Leaf insertion.
            let needs_split = {
                let Node::Leaf { keys, vals, .. } = &mut self.slab[idx as usize] else {
                    unreachable!()
                };
                match keys.binary_search(&key) {
                    Ok(pos) => {
                        let old = std::mem::replace(&mut vals[pos], value);
                        return InsertOutcome::Replaced(old);
                    }
                    Err(pos) => {
                        keys.insert(pos, key);
                        vals.insert(pos, value);
                    }
                }
                keys.len() > self.leaf_max()
            };
            let split = if needs_split {
                Some(self.split_leaf(idx))
            } else {
                None
            };
            InsertOutcome::Inserted(split)
        }
    }

    fn split_leaf(&mut self, idx: u32) -> (K, u32) {
        let (right_keys, right_vals, old_next) = {
            let Node::Leaf {
                keys, vals, next, ..
            } = &mut self.slab[idx as usize]
            else {
                unreachable!()
            };
            let mid = keys.len() / 2;
            (keys.split_off(mid), vals.split_off(mid), *next)
        };
        let sep = right_keys[0].clone();
        let right = self.alloc(Node::Leaf {
            keys: right_keys,
            vals: right_vals,
            prev: idx,
            next: old_next,
        });
        if old_next != NIL {
            if let Node::Leaf { prev, .. } = &mut self.slab[old_next as usize] {
                *prev = right;
            }
        }
        if let Node::Leaf { next, .. } = &mut self.slab[idx as usize] {
            *next = right;
        }
        (sep, right)
    }

    fn split_internal(&mut self, idx: u32) -> (K, u32) {
        let (sep, right_keys, right_children) = {
            let Node::Internal { keys, children } = &mut self.slab[idx as usize] else {
                unreachable!()
            };
            let mid = keys.len() / 2;
            let right_keys = keys.split_off(mid + 1);
            let sep = keys.pop().expect("mid separator");
            let right_children = children.split_off(mid + 1);
            (sep, right_keys, right_children)
        };
        let right = self.alloc(Node::Internal {
            keys: right_keys,
            children: right_children,
        });
        (sep, right)
    }

    // -------------------------------------------------------------- removal

    /// Remove `key`, returning its value if present.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        // Record the descent path: (node index, chosen child position) —
        // inline, so removals stay allocation-free.
        let mut path: InlineVec<(u32, usize), MAX_DEPTH> = InlineVec::new();
        let mut idx = self.root;
        loop {
            match &self.slab[idx as usize] {
                Node::Internal { keys, children } => {
                    let pos = Self::child_for(keys, key);
                    path.push((idx, pos));
                    idx = children[pos];
                }
                Node::Leaf { .. } => break,
                Node::Free => unreachable!(),
            }
        }

        let removed = {
            let Node::Leaf { keys, vals, .. } = &mut self.slab[idx as usize] else {
                unreachable!()
            };
            match keys.binary_search(key) {
                Ok(pos) => {
                    keys.remove(pos);
                    Some(vals.remove(pos))
                }
                Err(_) => None,
            }
        };
        let value = removed?;
        self.len -= 1;
        self.bytes -= value.byte_size() as u64;

        // Walk back up, fixing any underflow the removal caused.
        let mut child = idx;
        while let Some((parent, pos)) = path.pop() {
            if !self.is_underfull(child) {
                break;
            }
            self.rebalance(parent, pos);
            child = parent;
        }
        self.collapse_root();
        Some(value)
    }

    fn is_underfull(&self, idx: u32) -> bool {
        if idx == self.root {
            return false;
        }
        match &self.slab[idx as usize] {
            Node::Leaf { keys, .. } => keys.len() < self.leaf_min(),
            Node::Internal { children, .. } => children.len() < self.internal_min_children(),
            Node::Free => unreachable!(),
        }
    }

    /// If the root is an internal node with a single child, shrink the tree.
    fn collapse_root(&mut self) {
        while let Node::Internal { children, .. } = &self.slab[self.root as usize] {
            if children.len() > 1 {
                break;
            }
            let only = children[0];
            self.dealloc(self.root);
            self.root = only;
        }
    }

    /// Fix the underfull child at `pos` of `parent` by borrowing from a
    /// sibling or merging with one.
    fn rebalance(&mut self, parent: u32, pos: usize) {
        let (child, left, right) = {
            let Node::Internal { children, .. } = &self.slab[parent as usize] else {
                unreachable!()
            };
            let child = children[pos];
            let left = if pos > 0 {
                Some(children[pos - 1])
            } else {
                None
            };
            let right = children.get(pos + 1).copied();
            (child, left, right)
        };

        let is_leaf = matches!(self.slab[child as usize], Node::Leaf { .. });

        if is_leaf {
            if let Some(l) = left {
                if self.leaf_len(l) > self.leaf_min() {
                    self.borrow_leaf_from_left(parent, pos, l, child);
                    return;
                }
            }
            if let Some(r) = right {
                if self.leaf_len(r) > self.leaf_min() {
                    self.borrow_leaf_from_right(parent, pos, child, r);
                    return;
                }
            }
            // Merge with a sibling (left preferred).
            if let Some(l) = left {
                self.merge_leaves(parent, pos - 1, l, child);
            } else if let Some(r) = right {
                self.merge_leaves(parent, pos, child, r);
            }
        } else {
            if let Some(l) = left {
                if self.internal_children(l) > self.internal_min_children() {
                    self.borrow_internal_from_left(parent, pos, l, child);
                    return;
                }
            }
            if let Some(r) = right {
                if self.internal_children(r) > self.internal_min_children() {
                    self.borrow_internal_from_right(parent, pos, child, r);
                    return;
                }
            }
            if let Some(l) = left {
                self.merge_internals(parent, pos - 1, l, child);
            } else if let Some(r) = right {
                self.merge_internals(parent, pos, child, r);
            }
        }
    }

    fn leaf_len(&self, idx: u32) -> usize {
        match &self.slab[idx as usize] {
            Node::Leaf { keys, .. } => keys.len(),
            _ => unreachable!(),
        }
    }

    fn internal_children(&self, idx: u32) -> usize {
        match &self.slab[idx as usize] {
            Node::Internal { children, .. } => children.len(),
            _ => unreachable!(),
        }
    }

    fn borrow_leaf_from_left(&mut self, parent: u32, pos: usize, left: u32, child: u32) {
        let (k, v) = {
            let Node::Leaf { keys, vals, .. } = &mut self.slab[left as usize] else {
                unreachable!()
            };
            (keys.pop().unwrap(), vals.pop().unwrap())
        };
        let new_sep = k.clone();
        {
            let Node::Leaf { keys, vals, .. } = &mut self.slab[child as usize] else {
                unreachable!()
            };
            keys.insert(0, k);
            vals.insert(0, v);
        }
        let Node::Internal { keys, .. } = &mut self.slab[parent as usize] else {
            unreachable!()
        };
        keys[pos - 1] = new_sep;
    }

    fn borrow_leaf_from_right(&mut self, parent: u32, pos: usize, child: u32, right: u32) {
        let (k, v, new_first) = {
            let Node::Leaf { keys, vals, .. } = &mut self.slab[right as usize] else {
                unreachable!()
            };
            let k = keys.remove(0);
            let v = vals.remove(0);
            (k, v, keys[0].clone())
        };
        {
            let Node::Leaf { keys, vals, .. } = &mut self.slab[child as usize] else {
                unreachable!()
            };
            keys.push(k);
            vals.push(v);
        }
        let Node::Internal { keys, .. } = &mut self.slab[parent as usize] else {
            unreachable!()
        };
        keys[pos] = new_first;
    }

    /// Merge the leaf at child position `sep_pos + 1` into the one at
    /// `sep_pos`, dropping separator `sep_pos` from the parent.
    fn merge_leaves(&mut self, parent: u32, sep_pos: usize, left: u32, right: u32) {
        let (mut rkeys, mut rvals, rnext) = {
            let Node::Leaf {
                keys, vals, next, ..
            } = &mut self.slab[right as usize]
            else {
                unreachable!()
            };
            (std::mem::take(keys), std::mem::take(vals), *next)
        };
        {
            let Node::Leaf {
                keys, vals, next, ..
            } = &mut self.slab[left as usize]
            else {
                unreachable!()
            };
            keys.append(&mut rkeys);
            vals.append(&mut rvals);
            *next = rnext;
        }
        if rnext != NIL {
            if let Node::Leaf { prev, .. } = &mut self.slab[rnext as usize] {
                *prev = left;
            }
        }
        self.dealloc(right);
        let Node::Internal { keys, children } = &mut self.slab[parent as usize] else {
            unreachable!()
        };
        keys.remove(sep_pos);
        children.remove(sep_pos + 1);
    }

    fn borrow_internal_from_left(&mut self, parent: u32, pos: usize, left: u32, child: u32) {
        let (moved_key, moved_child) = {
            let Node::Internal { keys, children } = &mut self.slab[left as usize] else {
                unreachable!()
            };
            (keys.pop().unwrap(), children.pop().unwrap())
        };
        let sep = {
            let Node::Internal { keys, .. } = &mut self.slab[parent as usize] else {
                unreachable!()
            };
            std::mem::replace(&mut keys[pos - 1], moved_key)
        };
        let Node::Internal { keys, children } = &mut self.slab[child as usize] else {
            unreachable!()
        };
        keys.insert(0, sep);
        children.insert(0, moved_child);
    }

    fn borrow_internal_from_right(&mut self, parent: u32, pos: usize, child: u32, right: u32) {
        let (moved_key, moved_child) = {
            let Node::Internal { keys, children } = &mut self.slab[right as usize] else {
                unreachable!()
            };
            (keys.remove(0), children.remove(0))
        };
        let sep = {
            let Node::Internal { keys, .. } = &mut self.slab[parent as usize] else {
                unreachable!()
            };
            std::mem::replace(&mut keys[pos], moved_key)
        };
        let Node::Internal { keys, children } = &mut self.slab[child as usize] else {
            unreachable!()
        };
        keys.push(sep);
        children.push(moved_child);
    }

    fn merge_internals(&mut self, parent: u32, sep_pos: usize, left: u32, right: u32) {
        let sep = {
            let Node::Internal { keys, children } = &mut self.slab[parent as usize] else {
                unreachable!()
            };
            let sep = keys.remove(sep_pos);
            children.remove(sep_pos + 1);
            sep
        };
        let (mut rkeys, mut rchildren) = {
            let Node::Internal { keys, children } = &mut self.slab[right as usize] else {
                unreachable!()
            };
            (std::mem::take(keys), std::mem::take(children))
        };
        self.dealloc(right);
        let Node::Internal { keys, children } = &mut self.slab[left as usize] else {
            unreachable!()
        };
        keys.push(sep);
        keys.append(&mut rkeys);
        children.append(&mut rchildren);
    }

    // ------------------------------------------------------------- sweeping

    /// Iterate over records whose keys fall in `range`, in key order, by
    /// walking the linked leaf chain — the access pattern of the paper's
    /// Sweep-and-Migrate (Algorithm 2).
    pub fn range<R: RangeBounds<K>>(&self, range: R) -> RangeIter<'_, K, V, CAP> {
        let (leaf, pos) = match range.start_bound() {
            Bound::Unbounded => (self.head, 0),
            Bound::Included(k) => self.lower_bound(k, true),
            Bound::Excluded(k) => self.lower_bound(k, false),
        };
        RangeIter {
            tree: self,
            leaf,
            pos,
            end: match range.end_bound() {
                Bound::Unbounded => Bound::Unbounded,
                Bound::Included(k) => Bound::Included(k.clone()),
                Bound::Excluded(k) => Bound::Excluded(k.clone()),
            },
        }
    }

    /// Iterate over all records in key order.
    pub fn iter(&self) -> RangeIter<'_, K, V, CAP> {
        self.range(..)
    }

    /// Locate the first record with key `>= k` (or `> k` when
    /// `inclusive == false`); returns `(leaf, position)`.
    fn lower_bound(&self, k: &K, inclusive: bool) -> (u32, usize) {
        let leaf = self.find_leaf(k);
        let Node::Leaf { keys, next, .. } = &self.slab[leaf as usize] else {
            unreachable!()
        };
        let pos = if inclusive {
            keys.partition_point(|key| key < k)
        } else {
            keys.partition_point(|key| key <= k)
        };
        if pos == keys.len() && *next != NIL {
            (*next, 0)
        } else {
            (leaf, pos)
        }
    }

    /// Collect (clones of) all keys in `range`, in order.
    pub fn keys_in_range<R: RangeBounds<K>>(&self, range: R) -> Vec<K> {
        self.range(range).map(|(k, _)| k.clone()).collect()
    }

    /// The median key of the records in `range` (the paper's `k^µ`,
    /// Algorithm 1 line 11): the key at rank `⌊m/2⌋` of the `m` matching
    /// records. `None` if the range is empty.
    pub fn median_key_in_range<R: RangeBounds<K>>(&self, range: R) -> Option<K> {
        let keys = self.keys_in_range(range);
        if keys.is_empty() {
            None
        } else {
            Some(keys[keys.len() / 2].clone())
        }
    }

    /// Remove and return every record with key in `[start, end]`, in key
    /// order. This is the destructive half of Sweep-and-Migrate: the caller
    /// ships the returned records to the destination node.
    pub fn drain_range(&mut self, start: &K, end: &K) -> Vec<(K, V)> {
        let keys = self.keys_in_range(start.clone()..=end.clone());
        let mut out = Vec::with_capacity(keys.len());
        for k in keys {
            let v = self.remove(&k).expect("key listed by sweep must exist");
            out.push((k, v));
        }
        out
    }

    /// Drop every record.
    pub fn clear(&mut self) {
        let order = self.order;
        *self = Self::new(order);
    }

    // ----------------------------------------------------------- validation

    /// Exhaustively check the structural invariants. Intended for tests;
    /// panics with a description of the first violation found.
    pub fn validate(&self) {
        let mut leaf_depth = None;
        let mut count = 0usize;
        let mut bytes = 0u64;
        self.validate_rec(
            self.root,
            0,
            None,
            None,
            &mut leaf_depth,
            &mut count,
            &mut bytes,
        );
        assert_eq!(count, self.len, "len does not match record count");
        assert_eq!(bytes, self.bytes, "bytes does not match accounted sizes");

        // The leaf chain must visit every record in strictly ascending order.
        let mut chain_count = 0usize;
        let mut prev_key: Option<K> = None;
        let mut prev_leaf = NIL;
        let mut idx = self.head;
        while idx != NIL {
            let Node::Leaf {
                keys, prev, next, ..
            } = &self.slab[idx as usize]
            else {
                panic!("leaf chain reached a non-leaf");
            };
            assert_eq!(*prev, prev_leaf, "prev pointer broken at leaf {idx}");
            for k in keys {
                if let Some(p) = &prev_key {
                    assert!(p < k, "leaf chain keys out of order");
                }
                prev_key = Some(k.clone());
                chain_count += 1;
            }
            prev_leaf = idx;
            idx = *next;
        }
        assert_eq!(chain_count, self.len, "leaf chain misses records");
    }

    #[allow(clippy::too_many_arguments)]
    fn validate_rec(
        &self,
        idx: u32,
        depth: usize,
        lo: Option<&K>,
        hi: Option<&K>,
        leaf_depth: &mut Option<usize>,
        count: &mut usize,
        bytes: &mut u64,
    ) {
        match &self.slab[idx as usize] {
            Node::Leaf { keys, vals, .. } => {
                match leaf_depth {
                    None => *leaf_depth = Some(depth),
                    Some(d) => assert_eq!(*d, depth, "leaves at different depths"),
                }
                assert_eq!(keys.len(), vals.len());
                assert!(keys.len() <= self.leaf_max(), "overfull leaf");
                if idx != self.root {
                    assert!(keys.len() >= self.leaf_min(), "underfull leaf");
                }
                assert!(keys.windows(2).all(|w| w[0] < w[1]), "unsorted leaf");
                if let (Some(lo), Some(first)) = (lo, keys.first()) {
                    assert!(lo <= first, "leaf key below subtree lower bound");
                }
                if let (Some(hi), Some(last)) = (hi, keys.last()) {
                    assert!(last < hi, "leaf key at/above subtree upper bound");
                }
                *count += keys.len();
                *bytes += vals.iter().map(|v| v.byte_size() as u64).sum::<u64>();
            }
            Node::Internal { keys, children } => {
                assert_eq!(children.len(), keys.len() + 1);
                assert!(children.len() <= self.order, "overfull internal node");
                if idx != self.root {
                    assert!(
                        children.len() >= self.internal_min_children(),
                        "underfull internal node"
                    );
                } else {
                    assert!(children.len() >= 2, "root internal with one child");
                }
                assert!(keys.windows(2).all(|w| w[0] < w[1]), "unsorted separators");
                for (i, &child) in children.iter().enumerate() {
                    let clo = if i == 0 { lo } else { Some(&keys[i - 1]) };
                    let chi = if i == keys.len() { hi } else { Some(&keys[i]) };
                    self.validate_rec(child, depth + 1, clo, chi, leaf_depth, count, bytes);
                }
            }
            Node::Free => panic!("free node reachable from root"),
        }
    }

    /// Height of the tree (levels of nodes; a lone leaf has depth 1).
    pub fn depth(&self) -> usize {
        let mut d = 1;
        let mut idx = self.root;
        while let Node::Internal { children, .. } = &self.slab[idx as usize] {
            idx = children[0];
            d += 1;
        }
        d
    }
}

impl<K: Ord + Clone + fmt::Debug, V: ByteSize, const CAP: usize> fmt::Debug
    for BPlusTree<K, V, CAP>
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BPlusTree")
            .field("order", &self.order)
            .field("len", &self.len)
            .field("bytes", &self.bytes)
            .field("depth", &self.depth())
            .finish()
    }
}

enum InsertOutcome<K, V> {
    /// Key existed; value replaced, no structural change.
    Replaced(V),
    /// New record; carries split info if the child split.
    Inserted(Option<(K, u32)>),
}

/// Ordered iterator over a key range, walking the linked leaf chain.
pub struct RangeIter<'a, K, V, const CAP: usize = DEFAULT_NODE_CAP> {
    tree: &'a BPlusTree<K, V, CAP>,
    leaf: u32,
    pos: usize,
    end: Bound<K>,
}

impl<'a, K: Ord + Clone, V: ByteSize, const CAP: usize> Iterator for RangeIter<'a, K, V, CAP> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.leaf == NIL {
                return None;
            }
            let Node::Leaf {
                keys, vals, next, ..
            } = &self.tree.slab[self.leaf as usize]
            else {
                unreachable!()
            };
            if self.pos >= keys.len() {
                self.leaf = *next;
                self.pos = 0;
                continue;
            }
            let k = &keys[self.pos];
            let in_range = match &self.end {
                Bound::Unbounded => true,
                Bound::Included(e) => k <= e,
                Bound::Excluded(e) => k < e,
            };
            if !in_range {
                self.leaf = NIL;
                return None;
            }
            let v = &vals[self.pos];
            self.pos += 1;
            return Some((k, v));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree_with(order: usize, n: u64) -> BPlusTree<u64, u64> {
        let mut t: BPlusTree<u64, u64> = BPlusTree::new(order);
        for k in 0..n {
            t.insert(k, k * 10);
        }
        t
    }

    #[test]
    fn empty_tree_behaviour() {
        let t: BPlusTree<u64, u64> = BPlusTree::new(4);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.bytes(), 0);
        assert_eq!(t.get(&1), None);
        assert_eq!(t.first_key(), None);
        assert_eq!(t.last_key(), None);
        assert_eq!(t.iter().count(), 0);
        t.validate();
    }

    #[test]
    fn insert_and_get_sequential() {
        let t = tree_with(4, 1000);
        t.validate();
        for k in 0..1000 {
            assert_eq!(t.get(&k), Some(&(k * 10)));
        }
        assert_eq!(t.get(&1000), None);
        assert_eq!(t.len(), 1000);
    }

    #[test]
    fn insert_reverse_and_shuffled() {
        let mut t: BPlusTree<u64, u64> = BPlusTree::new(5);
        for k in (0..500u64).rev() {
            t.insert(k, k);
        }
        t.validate();
        // A deterministic shuffle via multiplication by a unit mod 2^16.
        let mut t2: BPlusTree<u64, u64> = BPlusTree::new(5);
        for i in 0..4096u64 {
            let k = (i * 25173 + 13849) % 65536;
            t2.insert(k, i);
        }
        t2.validate();
        assert_eq!(t.len(), 500);
    }

    #[test]
    fn insert_replaces_and_reports_old_value() {
        let mut t: BPlusTree<u64, u64> = BPlusTree::new(4);
        assert_eq!(t.insert(7u64, 1u64), None);
        assert_eq!(t.insert(7, 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&7), Some(&2));
        t.validate();
    }

    #[test]
    fn byte_accounting_tracks_inserts_replacements_removals() {
        // Footprint per record = Vec header + buffer (see `ByteSize`).
        let hdr = std::mem::size_of::<Vec<u8>>() as u64;
        let mut t: BPlusTree<u64, Vec<u8>> = BPlusTree::new(8);
        t.insert(1, vec![0; 100]);
        t.insert(2, vec![0; 50]);
        assert_eq!(t.bytes(), 150 + 2 * hdr);
        t.insert(1, vec![0; 10]); // replace shrinks
        assert_eq!(t.bytes(), 60 + 2 * hdr);
        t.remove(&2);
        assert_eq!(t.bytes(), 10 + hdr);
        t.remove(&1);
        assert_eq!(t.bytes(), 0);
        t.validate();
    }

    #[test]
    fn remove_missing_returns_none_and_leaves_tree_intact() {
        let mut t = tree_with(4, 100);
        assert_eq!(t.remove(&1000), None);
        assert_eq!(t.len(), 100);
        t.validate();
    }

    #[test]
    fn remove_all_ascending() {
        let mut t = tree_with(4, 500);
        for k in 0..500 {
            assert_eq!(t.remove(&k), Some(k * 10), "at key {k}");
            t.validate();
        }
        assert!(t.is_empty());
    }

    #[test]
    fn remove_all_descending() {
        let mut t = tree_with(4, 500);
        for k in (0..500).rev() {
            assert_eq!(t.remove(&k), Some(k * 10));
            t.validate();
        }
        assert!(t.is_empty());
        assert_eq!(t.depth(), 1);
    }

    #[test]
    fn remove_alternating_pattern() {
        let mut t = tree_with(4, 1000);
        for k in (0..1000).step_by(2) {
            assert!(t.remove(&k).is_some());
        }
        t.validate();
        assert_eq!(t.len(), 500);
        for k in (1..1000).step_by(2) {
            assert_eq!(t.get(&k), Some(&(k * 10)));
        }
    }

    #[test]
    fn iteration_is_sorted_and_complete() {
        let mut t: BPlusTree<u64, u64> = BPlusTree::new(6);
        for i in 0..2000u64 {
            t.insert((i * 7919) % 65536, i);
        }
        let keys: Vec<u64> = t.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys.len(), t.len());
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn range_queries_respect_bounds() {
        let t = tree_with(4, 100);
        let mid: Vec<u64> = t.range(10..20).map(|(k, _)| *k).collect();
        assert_eq!(mid, (10..20).collect::<Vec<_>>());
        let inc: Vec<u64> = t.range(10..=20).map(|(k, _)| *k).collect();
        assert_eq!(inc, (10..=20).collect::<Vec<_>>());
        let from: Vec<u64> = t.range(95..).map(|(k, _)| *k).collect();
        assert_eq!(from, vec![95, 96, 97, 98, 99]);
        let upto: Vec<u64> = t.range(..3).map(|(k, _)| *k).collect();
        assert_eq!(upto, vec![0, 1, 2]);
        let none: Vec<u64> = t.range(200..300).map(|(k, _)| *k).collect();
        assert!(none.is_empty());
    }

    #[test]
    fn range_with_absent_bound_keys() {
        let mut t: BPlusTree<u64, u64> = BPlusTree::new(4);
        for k in (0..100u64).step_by(10) {
            t.insert(k, k);
        }
        // Bounds that fall between stored keys.
        let got: Vec<u64> = t.range(15..55).map(|(k, _)| *k).collect();
        assert_eq!(got, vec![20, 30, 40, 50]);
    }

    #[test]
    fn first_and_last_key() {
        let t = tree_with(4, 321);
        assert_eq!(t.first_key(), Some(&0));
        assert_eq!(t.last_key(), Some(&320));
    }

    #[test]
    fn median_key_in_range_matches_definition() {
        let t = tree_with(4, 100);
        // Range [0, 99]: 100 keys, median at rank 50.
        assert_eq!(t.median_key_in_range(0..=99), Some(50));
        // Range [10, 20]: 11 keys, rank 5 -> 15.
        assert_eq!(t.median_key_in_range(10..=20), Some(15));
        assert_eq!(t.median_key_in_range(200..=300), None);
    }

    #[test]
    fn drain_range_removes_and_returns_in_order() {
        let mut t = tree_with(4, 200);
        let drained = t.drain_range(&50, &149);
        assert_eq!(drained.len(), 100);
        assert!(drained.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(drained[0], (50, 500));
        assert_eq!(t.len(), 100);
        assert_eq!(t.get(&49), Some(&490));
        assert_eq!(t.get(&50), None);
        assert_eq!(t.get(&150), Some(&1500));
        t.validate();
    }

    #[test]
    fn drain_entire_tree() {
        let mut t = tree_with(5, 300);
        let all = t.drain_range(&0, &299);
        assert_eq!(all.len(), 300);
        assert!(t.is_empty());
        t.validate();
    }

    #[test]
    fn clear_resets_everything() {
        let mut t = tree_with(4, 100);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.bytes(), 0);
        assert_eq!(t.iter().count(), 0);
        t.insert(5, 5);
        assert_eq!(t.get(&5), Some(&5));
        t.validate();
    }

    #[test]
    fn get_mut_allows_in_place_update() {
        let mut t = tree_with(4, 10);
        *t.get_mut(&3).unwrap() = 999;
        assert_eq!(t.get(&3), Some(&999));
        assert_eq!(t.get_mut(&100), None);
    }

    #[test]
    fn depth_grows_logarithmically() {
        let t = tree_with(4, 10_000);
        // With order 4 a 10k tree must be deeper than 3 but far shallower
        // than linear.
        assert!(t.depth() > 3);
        assert!(t.depth() < 20);
        // Orders above 64 need a wider inline capacity than the default.
        let mut wide: BPlusTree<u64, u64, 130> = BPlusTree::new(128);
        for k in 0..10_000u64 {
            wide.insert(k, k * 10);
        }
        assert!(wide.depth() <= 3);
    }

    #[test]
    fn slab_slots_are_recycled() {
        let mut t = tree_with(4, 1000);
        let peak_slots = {
            // Drain and refill; slab should not keep growing without bound.
            for k in 0..1000u64 {
                t.remove(&k);
            }
            t.validate();
            t.slab.len()
        };
        for k in 0..1000u64 {
            t.insert(k, k);
        }
        t.validate();
        assert!(
            t.slab.len() <= peak_slots + peak_slots / 2 + 8,
            "slab grew from {peak_slots} to {}",
            t.slab.len()
        );
    }

    #[test]
    fn various_orders_stay_valid_under_churn() {
        for order in [4, 5, 7, 16, 64] {
            let mut t: BPlusTree<u64, u64> = BPlusTree::new(order);
            for i in 0..3000u64 {
                let k = (i * 2654435761) % 4096;
                if i % 3 == 0 {
                    t.remove(&k);
                } else {
                    t.insert(k, i);
                }
            }
            t.validate();
        }
    }

    #[test]
    #[should_panic(expected = "order must be at least 4")]
    fn tiny_order_rejected() {
        let _ = BPlusTree::<u64, u64>::new(3);
    }
}
