//! An in-memory B+-tree with linked leaves, as installed on every cache
//! server of the elastic cloud cache (paper §II-A).
//!
//! Why a hand-rolled tree instead of `std::collections::BTreeMap`?
//! The paper's *Sweep-and-Migrate* procedure (Algorithm 2) depends on two
//! properties `BTreeMap` does not expose:
//!
//! 1. **Linked leaves** — leaf nodes form a key-sorted doubly linked list, so
//!    a migration sweep can locate the start leaf with one `O(log n)` search
//!    and then walk sibling pointers linearly, exactly as the paper analyses
//!    (`log_2 ||n|| + |n|/2` record visits).
//! 2. **Byte-size accounting** — every insertion/removal updates a running
//!    total of stored value bytes (`||n||` in the paper's notation), which the
//!    overflow test of GBA-Insert (Algorithm 1, line 5) consults in O(1).
//!
//! The tree is a slab-allocated (index-based) structure: nodes live in one
//! `Vec`, freed slots are recycled through a free list, and sibling/child
//! links are `u32` indices. Keys, values, and child indices are stored
//! *inline* in each node ([`InlineVec`], capacity fixed by the `CAP`
//! const parameter), so the slab is one contiguous arena: splits, merges,
//! and rebalances move bytes within it and never call the global
//! allocator, and leaf sweeps walk dense memory. The only `unsafe` in the
//! crate is the `MaybeUninit` storage inside [`InlineVec`], behind a safe
//! wrapper (safety argument in `inline.rs` and DESIGN.md §17).
//!
//! # Example
//!
//! ```
//! use ecc_bptree::BPlusTree;
//!
//! let mut t: BPlusTree<u64, Vec<u8>> = BPlusTree::new(32);
//! for k in 0..1000u64 {
//!     t.insert(k, vec![0u8; 16]);
//! }
//! assert_eq!(t.len(), 1000);
//! // Footprint accounting: each record is a 24-byte Vec header plus its
//! // 16-byte buffer (see `ByteSize`), not a bare len sum.
//! assert_eq!(t.bytes(), 1000 * (std::mem::size_of::<Vec<u8>>() as u64 + 16));
//!
//! // Linked-leaf range sweep: the lower half, in order.
//! let swept: Vec<u64> = t.range(..500).map(|(k, _)| *k).collect();
//! assert_eq!(swept, (0..500).collect::<Vec<_>>());
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

mod bytesize;
mod inline;
mod tree;

pub use bytesize::ByteSize;
pub use inline::InlineVec;
pub use tree::{BPlusTree, RangeIter, DEFAULT_NODE_CAP};
