//! Property tests: the B+-tree must behave exactly like `BTreeMap` under
//! arbitrary operation sequences, while also maintaining its structural
//! invariants (checked by `validate()`).

use std::collections::BTreeMap;

use ecc_bptree::BPlusTree;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Insert(u16, u32),
    Remove(u16),
    Get(u16),
    DrainRange(u16, u16),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (any::<u16>(), any::<u32>()).prop_map(|(k, v)| Op::Insert(k, v)),
        2 => any::<u16>().prop_map(Op::Remove),
        1 => any::<u16>().prop_map(Op::Get),
        1 => (any::<u16>(), any::<u16>()).prop_map(|(a, b)| Op::DrainRange(a.min(b), a.max(b))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matches_btreemap_oracle(
        order in 4usize..=32,
        ops in proptest::collection::vec(op_strategy(), 1..400),
    ) {
        let mut tree: BPlusTree<u16, u32> = BPlusTree::new(order);
        let mut oracle: BTreeMap<u16, u32> = BTreeMap::new();

        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    prop_assert_eq!(tree.insert(k, v), oracle.insert(k, v));
                }
                Op::Remove(k) => {
                    prop_assert_eq!(tree.remove(&k), oracle.remove(&k));
                }
                Op::Get(k) => {
                    prop_assert_eq!(tree.get(&k), oracle.get(&k));
                }
                Op::DrainRange(lo, hi) => {
                    let drained = tree.drain_range(&lo, &hi);
                    let expected: Vec<(u16, u32)> = {
                        let keys: Vec<u16> =
                            oracle.range(lo..=hi).map(|(k, _)| *k).collect();
                        keys.into_iter()
                            .map(|k| (k, oracle.remove(&k).unwrap()))
                            .collect()
                    };
                    prop_assert_eq!(drained, expected);
                }
            }
            prop_assert_eq!(tree.len(), oracle.len());
        }

        tree.validate();
        // Full scan must agree.
        let got: Vec<(u16, u32)> = tree.iter().map(|(k, v)| (*k, *v)).collect();
        let want: Vec<(u16, u32)> = oracle.iter().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(got, want);
        // Byte accounting: every u32 is 4 bytes.
        prop_assert_eq!(tree.bytes(), oracle.len() as u64 * 4);
    }

    #[test]
    fn range_queries_match_oracle(
        order in 4usize..=16,
        keys in proptest::collection::btree_set(any::<u16>(), 0..300),
        lo: u16,
        hi: u16,
    ) {
        let (lo, hi) = (lo.min(hi), lo.max(hi));
        let mut tree: BPlusTree<u16, u32> = BPlusTree::new(order);
        for &k in &keys {
            tree.insert(k, k as u32);
        }
        let got: Vec<u16> = tree.range(lo..=hi).map(|(k, _)| *k).collect();
        let want: Vec<u16> = keys.range(lo..=hi).copied().collect();
        prop_assert_eq!(got, want);

        let got_ex: Vec<u16> = tree.range(lo..hi).map(|(k, _)| *k).collect();
        let want_ex: Vec<u16> = keys.range(lo..hi).copied().collect();
        prop_assert_eq!(got_ex, want_ex);
    }

    #[test]
    fn median_key_is_middle_rank(
        keys in proptest::collection::btree_set(any::<u16>(), 1..200),
    ) {
        let mut tree: BPlusTree<u16, u32> = BPlusTree::new(8);
        for &k in &keys {
            tree.insert(k, 0);
        }
        let sorted: Vec<u16> = keys.iter().copied().collect();
        let median = tree.median_key_in_range(..).unwrap();
        prop_assert_eq!(median, sorted[sorted.len() / 2]);
    }

    #[test]
    fn validate_holds_after_heavy_churn(
        order in 4usize..=8,
        seeds in proptest::collection::vec(any::<u32>(), 100..1500),
    ) {
        let mut tree: BPlusTree<u32, u32> = BPlusTree::new(order);
        for (i, s) in seeds.iter().enumerate() {
            let k = s % 512;
            if i % 4 == 3 {
                tree.remove(&k);
            } else {
                tree.insert(k, *s);
            }
        }
        tree.validate();
    }
}
