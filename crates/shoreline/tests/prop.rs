//! Property tests for the shoreline substrate: extraction must be total,
//! bounded and deterministic on every tile the archive can produce.

use ecc_shoreline::ctm::CtmArchive;
use ecc_shoreline::extract::{extract, Shoreline};
use ecc_shoreline::service::ShorelineService;
use ecc_shoreline::tide::TideModel;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Extraction never panics, stays within the byte budget and produces
    /// contour points inside the tile, for any tile/level/budget.
    #[test]
    fn extraction_is_total_and_bounded(
        seed: u64,
        tx in 0u32..64,
        ty in 0u32..64,
        level in -40.0f32..20.0,
        budget in 64usize..2048,
    ) {
        let archive = CtmArchive::new(seed, 32);
        let ctm = archive.tile(tx, ty);
        let s = extract(&ctm, level, budget);
        prop_assert!(s.to_bytes().len() <= budget + 24, "budget blown");
        for line in &s.lines {
            prop_assert!(line.len() >= 2 || line.is_empty());
            for &(x, y) in line {
                prop_assert!((0.0..=31.0).contains(&x), "x={x} out of tile");
                prop_assert!((0.0..=31.0).contains(&y), "y={y} out of tile");
            }
        }
        // Deterministic.
        prop_assert_eq!(s, extract(&ctm, level, budget));
    }

    /// Serialization round-trips for every extraction result.
    #[test]
    fn serialization_roundtrips(seed: u64, tx in 0u32..16, ty in 0u32..16) {
        let ctm = CtmArchive::new(seed, 32).tile(tx, ty);
        let s = extract(&ctm, 0.0, 1000);
        let bytes = s.to_bytes();
        prop_assert_eq!(Shoreline::from_bytes(&bytes), Some(s));
    }

    /// Parsing is total on arbitrary bytes.
    #[test]
    fn from_bytes_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Shoreline::from_bytes(&bytes);
    }

    /// Tide levels are always bounded by the constituents' amplitudes.
    #[test]
    fn tide_is_bounded(phase in 0.0f64..std::f64::consts::TAU, t: u32) {
        let m = TideModel::typical_at(phase);
        prop_assert!(m.level_at(t as u64).abs() <= m.max_excursion() + 1e-9);
    }

    /// The full service is deterministic and within its latency band for
    /// every key of the paper's 64 Ki space.
    #[test]
    fn service_is_deterministic_everywhere(seed in 0u64..50, key in 0u64..(1 << 16)) {
        let svc = ShorelineService::paper_default(seed);
        let a = svc.execute_key(key);
        let b = svc.execute_key(key);
        prop_assert_eq!(&a, &b);
        prop_assert!((21_000_000..=25_000_000).contains(&a.exec_us));
        prop_assert!(a.shoreline.to_bytes().len() < 1024);
    }
}
