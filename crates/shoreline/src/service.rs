//! The composed shoreline-extraction service.

use ecc_spatial::{Curve, GeoGrid, Linearizer, Scheme, TimeGrid};

use crate::ctm::CtmArchive;
use crate::extract::{extract, Shoreline};
use crate::tide::TideModel;

/// What one uncached service invocation yields.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceOutput {
    /// The derived shoreline (< 1 KB serialized).
    pub shoreline: Shoreline,
    /// Modelled wall-clock execution time of the uncached service in
    /// microseconds (≈ 23 s, with deterministic per-query variation).
    pub exec_us: u64,
    /// The cache key of this query under the service's linearizer.
    pub key: u64,
}

/// The service: CTM retrieval + water-level lookup + contour interpolation.
///
/// Execution is genuinely computed (the returned shoreline is a real
/// contour of the tile), but the *charged* duration is the paper's observed
/// ≈ 23 s, modelling the expensive retrieval/interpolation pipeline of the
/// real deployment.
#[derive(Debug, Clone)]
pub struct ShorelineService {
    archive: CtmArchive,
    tide: TideModel,
    linearizer: Linearizer,
    /// Mean uncached execution time in microseconds.
    pub base_exec_us: u64,
    /// Half-width of the deterministic execution-time variation.
    pub exec_jitter_us: u64,
    /// Byte budget for the serialized result.
    pub max_result_bytes: usize,
}

impl ShorelineService {
    /// The paper's configuration: 23 s mean execution, < 1 KB results,
    /// 8-bit global grid (64 Ki keys) with no time axis.
    pub fn paper_default(seed: u64) -> Self {
        Self::new(
            seed,
            Linearizer::new(
                GeoGrid::global(8),
                TimeGrid::disabled(),
                Curve::Morton,
                Scheme::TimeMajor,
            ),
        )
    }

    /// A service over a custom linearizer (key space).
    pub fn new(seed: u64, linearizer: Linearizer) -> Self {
        Self {
            archive: CtmArchive::new(seed, 64),
            tide: TideModel::typical(),
            linearizer,
            base_exec_us: 23_000_000,
            exec_jitter_us: 2_000_000,
            max_result_bytes: 1000,
        }
    }

    /// The linearizer mapping queries to cache keys.
    pub fn linearizer(&self) -> &Linearizer {
        &self.linearizer
    }

    /// Execute the service for a raw `(lat, lon, time)` query.
    pub fn execute(&self, lat: f64, lon: f64, timestamp: u64) -> ServiceOutput {
        self.execute_key(self.linearizer.key(lat, lon, timestamp))
    }

    /// Execute the service for an already-linearized key — the form the
    /// cache coordinator uses on a miss.
    pub fn execute_key(&self, key: u64) -> ServiceOutput {
        let (ix, iy, slot) = self.linearizer.cell_of(key);
        let ctm = self.archive.tile(ix, iy);
        let t = self.linearizer.time().slot_start(slot);
        // Phase-shift the gauge by location so tiles see different stages.
        let tide =
            TideModel::typical_at((ix as f64 * 0.37 + iy as f64 * 0.61) % std::f64::consts::TAU);
        let level = tide.level_at(t) as f32;
        let shoreline = extract(&ctm, level, self.max_result_bytes);
        ServiceOutput {
            shoreline,
            exec_us: self.exec_time_for(key),
            key,
        }
    }

    /// Deterministic per-key execution time:
    /// `base ± jitter` via a hash of the key.
    pub fn exec_time_for(&self, key: u64) -> u64 {
        if self.exec_jitter_us == 0 {
            return self.base_exec_us;
        }
        let mut h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= h >> 29;
        h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h ^= h >> 32;
        let spread = (h % (2 * self.exec_jitter_us + 1)) as i64 - self.exec_jitter_us as i64;
        (self.base_exec_us as i64 + spread) as u64
    }

    /// The mean water level model in use (for inspection/tests).
    pub fn tide(&self) -> &TideModel {
        &self.tide
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn execution_is_deterministic_per_key() {
        let svc = ShorelineService::paper_default(3);
        let a = svc.execute_key(12345);
        let b = svc.execute_key(12345);
        assert_eq!(a, b);
    }

    #[test]
    fn different_keys_give_different_shorelines() {
        let svc = ShorelineService::paper_default(3);
        let a = svc.execute_key(100);
        let b = svc.execute_key(50_000);
        assert_ne!(a.shoreline, b.shoreline);
    }

    #[test]
    fn exec_time_is_around_23_seconds() {
        let svc = ShorelineService::paper_default(5);
        for key in [0u64, 1, 999, 65_535] {
            let t = svc.exec_time_for(key);
            assert!(
                (21_000_000..=25_000_000).contains(&t),
                "key {key}: {t} µs out of band"
            );
        }
        // Jitter actually varies.
        let times: std::collections::HashSet<u64> =
            (0..100).map(|k| svc.exec_time_for(k)).collect();
        assert!(times.len() > 50, "execution times suspiciously uniform");
    }

    #[test]
    fn results_fit_the_paper_byte_bound() {
        let svc = ShorelineService::paper_default(8);
        for key in (0..65_536u64).step_by(4321) {
            let out = svc.execute_key(key);
            assert!(
                out.shoreline.to_bytes().len() < 1024,
                "key {key}: {} bytes",
                out.shoreline.to_bytes().len()
            );
        }
    }

    #[test]
    fn raw_queries_map_through_the_linearizer() {
        let svc = ShorelineService::paper_default(1);
        let out = svc.execute(45.5, -122.7, 0);
        let key = svc.linearizer().key(45.5, -122.7, 0);
        assert_eq!(out.key, key);
        assert_eq!(out.shoreline, svc.execute_key(key).shoreline);
    }

    #[test]
    fn most_tiles_actually_contain_a_shoreline() {
        let svc = ShorelineService::paper_default(17);
        let mut with_contour = 0;
        let total = 64;
        for i in 0..total {
            let key = (i * 65_536 / total) as u64;
            if svc.execute_key(key).shoreline.point_count() >= 2 {
                with_contour += 1;
            }
        }
        assert!(
            with_contour * 10 >= total * 9,
            "only {with_contour}/{total} tiles have shorelines"
        );
    }

    #[test]
    fn zero_jitter_gives_constant_time() {
        let mut svc = ShorelineService::paper_default(1);
        svc.exec_jitter_us = 0;
        assert_eq!(svc.exec_time_for(1), svc.base_exec_us);
        assert_eq!(svc.exec_time_for(999), svc.base_exec_us);
    }
}
