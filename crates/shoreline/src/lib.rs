//! The *Shoreline Extraction* service substrate.
//!
//! The paper's representative workload is a real geoscience service: given a
//! location and time of interest it (1) fetches the Coastal Terrain Model
//! (CTM) tile for the area, (2) looks up the water level at that time, and
//! (3) interpolates the coastline — taking ≈ 23 s end-to-end and producing a
//! derived result under 1 KB.
//!
//! We cannot ship Ohio State's CTM archive, so this crate synthesizes the
//! same pipeline (see DESIGN.md §2 for the substitution argument):
//!
//! * [`ctm`] — seeded procedural terrain tiles (multi-octave value noise
//!   shaped into a coastal depth gradient). A given `(seed, tile)` pair
//!   always yields the same terrain, so cached results stay consistent.
//! * [`tide`] — a harmonic water-level model (sum of tidal constituents),
//!   the standard form real gauges are fitted to.
//! * [`extract`] — genuine marching-squares contour extraction of the
//!   shoreline at the queried water level, decimated to fit the paper's
//!   < 1 KB result bound.
//! * [`service`] — the composed [`service::ShorelineService`], which returns
//!   both the derived shoreline and the *modelled* execution time (≈ 23 s
//!   with deterministic per-tile variation) that the caller charges to the
//!   virtual clock.
//!
//! # Example
//!
//! ```
//! use ecc_shoreline::service::ShorelineService;
//!
//! let svc = ShorelineService::paper_default(7);
//! let out = svc.execute(45.5, -122.7, 3600);
//! assert!(out.exec_us > 20_000_000, "the uncached service is ~23 s");
//! assert!(out.shoreline.to_bytes().len() < 1024, "derived result < 1 KB");
//! // Deterministic: the same query derives the same shoreline.
//! assert_eq!(out.shoreline, svc.execute(45.5, -122.7, 3600).shoreline);
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod ctm;
pub mod extract;
pub mod service;
pub mod tide;
