//! Harmonic water-level model.
//!
//! Real water-level feeds (e.g. NOAA gauges) are published as fitted
//! harmonic constituents: the level at time `t` is a mean plus a sum of
//! cosines at the tidal frequencies. We model the two dominant constituents
//! (M2 — principal lunar semidiurnal; S2 — principal solar semidiurnal)
//! plus a location-dependent phase, which is plenty to make the queried
//! water level vary realistically with the time of interest.

/// One tidal constituent: `amplitude * cos(2π t / period + phase)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Constituent {
    /// Amplitude in meters.
    pub amplitude_m: f64,
    /// Period in seconds.
    pub period_s: f64,
    /// Phase offset in radians.
    pub phase_rad: f64,
}

impl Constituent {
    /// Principal lunar semidiurnal tide (period 12.4206 h).
    pub fn m2(amplitude_m: f64, phase_rad: f64) -> Self {
        Self {
            amplitude_m,
            period_s: 12.4206 * 3600.0,
            phase_rad,
        }
    }

    /// Principal solar semidiurnal tide (period 12 h).
    pub fn s2(amplitude_m: f64, phase_rad: f64) -> Self {
        Self {
            amplitude_m,
            period_s: 12.0 * 3600.0,
            phase_rad,
        }
    }

    /// This constituent's contribution at time `t` (seconds).
    pub fn level_at(&self, t: f64) -> f64 {
        self.amplitude_m * (std::f64::consts::TAU * t / self.period_s + self.phase_rad).cos()
    }
}

/// A fitted gauge: mean level plus harmonic constituents.
#[derive(Debug, Clone, PartialEq)]
pub struct TideModel {
    /// Mean water level relative to the CTM datum, in meters.
    pub mean_m: f64,
    /// Harmonic constituents.
    pub constituents: Vec<Constituent>,
}

impl TideModel {
    /// A typical mixed semidiurnal gauge: ±1 m swing around the datum.
    pub fn typical() -> Self {
        Self {
            mean_m: 0.0,
            constituents: vec![Constituent::m2(0.8, 0.0), Constituent::s2(0.25, 1.1)],
        }
    }

    /// A gauge whose phase is shifted by location, so different tiles see
    /// different tide stages at the same instant (`phase_shift` in radians).
    pub fn typical_at(phase_shift: f64) -> Self {
        Self {
            mean_m: 0.0,
            constituents: vec![
                Constituent::m2(0.8, phase_shift),
                Constituent::s2(0.25, 1.1 + phase_shift),
            ],
        }
    }

    /// Water level (meters above datum) at `t` seconds.
    pub fn level_at(&self, t: u64) -> f64 {
        let t = t as f64;
        self.mean_m + self.constituents.iter().map(|c| c.level_at(t)).sum::<f64>()
    }

    /// The largest possible excursion from the mean (sum of amplitudes).
    pub fn max_excursion(&self) -> f64 {
        self.constituents.iter().map(|c| c.amplitude_m).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_is_bounded_by_amplitudes() {
        let m = TideModel::typical();
        let bound = m.max_excursion() + 1e-9;
        for t in (0..200_000).step_by(997) {
            let l = m.level_at(t);
            assert!(l.abs() <= bound, "level {l} exceeds bound {bound}");
        }
    }

    #[test]
    fn m2_period_is_semidiurnal() {
        let c = Constituent::m2(1.0, 0.0);
        let p = c.period_s;
        assert!((c.level_at(0.0) - c.level_at(p)).abs() < 1e-9);
        // Half a period later the tide is low.
        assert!((c.level_at(p / 2.0) + 1.0).abs() < 1e-9);
    }

    #[test]
    fn levels_vary_over_a_tidal_day() {
        let m = TideModel::typical();
        let samples: Vec<f64> = (0..24).map(|h| m.level_at(h * 3600)).collect();
        let lo = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(hi - lo > 1.0, "tide should swing > 1 m over a day");
    }

    #[test]
    fn phase_shift_changes_instantaneous_level() {
        let a = TideModel::typical_at(0.0);
        let b = TideModel::typical_at(1.5);
        assert!((a.level_at(0) - b.level_at(0)).abs() > 1e-3);
    }

    #[test]
    fn model_is_deterministic() {
        let m = TideModel::typical();
        assert_eq!(m.level_at(12345), m.level_at(12345));
    }
}
