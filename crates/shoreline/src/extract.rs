//! Marching-squares shoreline extraction.
//!
//! "Given the CTM and water level, the coast line is interpolated and
//! returned" (paper §IV-A). The standard tool for iso-line extraction on a
//! regular grid is marching squares with linear edge interpolation; we run
//! it at the queried water level, chain the resulting segments into
//! polylines, and decimate the result to the paper's < 1 KB bound.

use crate::ctm::Ctm;

/// A chained sequence of contour points in grid coordinates
/// (`x` = column, `y` = row, fractional).
pub type Polyline = Vec<(f32, f32)>;

/// A derived shoreline: one or more polylines.
#[derive(Debug, Clone, PartialEq)]
pub struct Shoreline {
    /// The contour lines, each with at least two points.
    pub lines: Vec<Polyline>,
}

impl Shoreline {
    /// Total number of points across all polylines.
    pub fn point_count(&self) -> usize {
        self.lines.iter().map(Vec::len).sum()
    }

    /// Serialize compactly: `u16` line count, then per line a `u16` point
    /// count followed by `f32` little-endian coordinate pairs.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(2 + self.point_count() * 8);
        out.extend_from_slice(&(self.lines.len() as u16).to_le_bytes());
        for line in &self.lines {
            out.extend_from_slice(&(line.len() as u16).to_le_bytes());
            for &(x, y) in line {
                out.extend_from_slice(&x.to_le_bytes());
                out.extend_from_slice(&y.to_le_bytes());
            }
        }
        out
    }

    /// Parse the [`Shoreline::to_bytes`] encoding.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let mut pos = 0usize;
        let take2 = |b: &[u8], p: &mut usize| -> Option<u16> {
            let v = u16::from_le_bytes(b.get(*p..*p + 2)?.try_into().ok()?);
            *p += 2;
            Some(v)
        };
        let take4 = |b: &[u8], p: &mut usize| -> Option<f32> {
            let v = f32::from_le_bytes(b.get(*p..*p + 4)?.try_into().ok()?);
            *p += 4;
            Some(v)
        };
        let n_lines = take2(bytes, &mut pos)?;
        let mut lines = Vec::with_capacity(n_lines as usize);
        for _ in 0..n_lines {
            let n_pts = take2(bytes, &mut pos)?;
            let mut line = Vec::with_capacity(n_pts as usize);
            for _ in 0..n_pts {
                let x = take4(bytes, &mut pos)?;
                let y = take4(bytes, &mut pos)?;
                line.push((x, y));
            }
            lines.push(line);
        }
        if pos == bytes.len() {
            Some(Self { lines })
        } else {
            None
        }
    }
}

/// Extract the shoreline of `ctm` at `level` meters, decimated so the
/// serialized result stays under `max_bytes`.
pub fn extract(ctm: &Ctm, level: f32, max_bytes: usize) -> Shoreline {
    let segments = marching_squares(ctm, level);
    let lines = chain_segments(segments);
    decimate(lines, max_bytes)
}

/// One contour segment inside a cell.
type Segment = ((f32, f32), (f32, f32));

/// Run marching squares over every cell, emitting contour segments with
/// linearly interpolated crossings.
fn marching_squares(ctm: &Ctm, level: f32) -> Vec<Segment> {
    let n = ctm.size;
    let mut segments = Vec::new();
    for row in 0..n - 1 {
        for col in 0..n - 1 {
            // Corner values, counterclockwise from top-left:
            //   a (row, col)     b (row, col+1)
            //   d (row+1, col)   c (row+1, col+1)
            let a = ctm.at(row, col);
            let b = ctm.at(row, col + 1);
            let c = ctm.at(row + 1, col + 1);
            let d = ctm.at(row + 1, col);
            let case = (usize::from(a > level))
                | (usize::from(b > level) << 1)
                | (usize::from(c > level) << 2)
                | (usize::from(d > level) << 3);
            if case == 0 || case == 15 {
                continue;
            }
            let (x, y) = (col as f32, row as f32);
            // Interpolated crossing points on each edge.
            let top = (x + frac(a, b, level), y);
            let right = (x + 1.0, y + frac(b, c, level));
            let bottom = (x + frac(d, c, level), y + 1.0);
            let left = (x, y + frac(a, d, level));
            match case {
                1 | 14 => segments.push((left, top)),
                2 | 13 => segments.push((top, right)),
                3 | 12 => segments.push((left, right)),
                4 | 11 => segments.push((right, bottom)),
                6 | 9 => segments.push((top, bottom)),
                7 | 8 => segments.push((left, bottom)),
                5 | 10 => {
                    // Saddle: disambiguate with the cell-center average.
                    let center = (a + b + c + d) / 4.0;
                    let flip = (center > level) == (case == 5);
                    if flip {
                        segments.push((left, top));
                        segments.push((right, bottom));
                    } else {
                        segments.push((top, right));
                        segments.push((left, bottom));
                    }
                }
                _ => unreachable!(),
            }
        }
    }
    segments
}

/// Fraction along an edge from the first value to the second where the
/// level crossing occurs.
#[inline]
fn frac(v0: f32, v1: f32, level: f32) -> f32 {
    if (v1 - v0).abs() < 1e-12 {
        0.5
    } else {
        ((level - v0) / (v1 - v0)).clamp(0.0, 1.0)
    }
}

/// Chain loose segments into polylines by matching endpoints (quantized to
/// kill float noise).
fn chain_segments(segments: Vec<Segment>) -> Vec<Polyline> {
    use std::collections::HashMap;

    #[inline]
    fn quant(p: (f32, f32)) -> (i64, i64) {
        ((p.0 * 4096.0).round() as i64, (p.1 * 4096.0).round() as i64)
    }

    // Adjacency: endpoint -> list of (segment index, which end).
    let mut adj: HashMap<(i64, i64), Vec<usize>> = HashMap::new();
    for (i, &(p, q)) in segments.iter().enumerate() {
        adj.entry(quant(p)).or_default().push(i);
        adj.entry(quant(q)).or_default().push(i);
    }

    let mut used = vec![false; segments.len()];
    let mut lines = Vec::new();
    for start in 0..segments.len() {
        if used[start] {
            continue;
        }
        used[start] = true;
        let (p, q) = segments[start];
        let mut line: Polyline = vec![p, q];
        // Extend forward from the tail, then backward from the head.
        for dir in 0..2 {
            loop {
                let tip = if dir == 0 {
                    *line.last().unwrap()
                } else {
                    line[0]
                };
                let Some(candidates) = adj.get(&quant(tip)) else {
                    break;
                };
                let next = candidates.iter().copied().find(|&i| !used[i]);
                let Some(i) = next else { break };
                used[i] = true;
                let (a, b) = segments[i];
                let other = if quant(a) == quant(tip) { b } else { a };
                if dir == 0 {
                    line.push(other);
                } else {
                    line.insert(0, other);
                }
            }
        }
        lines.push(line);
    }
    // Longest lines first: decimation keeps the most significant features.
    lines.sort_by_key(|l| std::cmp::Reverse(l.len()));
    lines
}

/// Reduce the point count until the serialized form fits `max_bytes`,
/// keeping endpoints and evenly spaced interior points.
fn decimate(lines: Vec<Polyline>, max_bytes: usize) -> Shoreline {
    // Budget: 2 header bytes + per line (2 + 8 * points).
    let budget_points = max_bytes.saturating_sub(2) / 8;
    let total: usize = lines.iter().map(Vec::len).sum();
    if total == 0 {
        return Shoreline { lines };
    }
    // Keep at most 8 lines; allocate the point budget proportionally.
    let kept: Vec<&Polyline> = lines.iter().take(8).collect();
    let kept_total: usize = kept.iter().map(|l| l.len()).sum();
    let mut out = Vec::new();
    for line in kept {
        let share = ((line.len() * budget_points) / kept_total.max(1)).clamp(2, line.len());
        out.push(resample(line, share));
    }
    Shoreline { lines: out }
}

/// Pick `target` points from `line`, always including both endpoints.
fn resample(line: &[(f32, f32)], target: usize) -> Polyline {
    if line.len() <= target {
        return line.to_vec();
    }
    let mut out = Vec::with_capacity(target);
    for i in 0..target {
        let idx = i * (line.len() - 1) / (target - 1);
        out.push(line[idx]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctm::CtmArchive;

    /// A linear east-rising ramp crossing zero at x = mid.
    fn ramp(n: usize) -> Ctm {
        let mut data = Vec::with_capacity(n * n);
        for _row in 0..n {
            for col in 0..n {
                data.push(col as f32 - (n as f32 / 2.0));
            }
        }
        Ctm { size: n, data }
    }

    #[test]
    fn ramp_produces_one_vertical_contour() {
        let ctm = ramp(16);
        let s = extract(&ctm, 0.0, 1024);
        assert_eq!(s.lines.len(), 1, "a ramp has exactly one shoreline");
        // Every point sits at x = 8 (where the ramp crosses zero).
        for &(x, _) in &s.lines[0] {
            assert!((x - 8.0).abs() < 1e-4, "contour strayed to x={x}");
        }
        // The line spans the full grid height.
        let ys: Vec<f32> = s.lines[0].iter().map(|p| p.1).collect();
        let (lo, hi) = (
            ys.iter().cloned().fold(f32::INFINITY, f32::min),
            ys.iter().cloned().fold(f32::NEG_INFINITY, f32::max),
        );
        assert!(
            hi - lo >= 14.0,
            "contour does not span the tile: {lo}..{hi}"
        );
    }

    #[test]
    fn level_shifts_move_the_contour() {
        let ctm = ramp(16);
        let at0 = extract(&ctm, 0.0, 1024);
        let at2 = extract(&ctm, 2.0, 1024);
        assert!((at0.lines[0][0].0 - 8.0).abs() < 1e-4);
        assert!((at2.lines[0][0].0 - 10.0).abs() < 1e-4);
    }

    #[test]
    fn all_water_or_all_land_yields_nothing() {
        let ctm = ramp(16);
        assert_eq!(extract(&ctm, 100.0, 1024).point_count(), 0);
        assert_eq!(extract(&ctm, -100.0, 1024).point_count(), 0);
    }

    #[test]
    fn real_tiles_produce_bounded_results() {
        let archive = CtmArchive::new(99, 64);
        for t in 0..6u32 {
            let ctm = archive.tile(t, t.wrapping_mul(7) % 5);
            let s = extract(&ctm, 0.3, 1000);
            assert!(s.point_count() >= 2, "tile {t} produced no shoreline");
            assert!(
                s.to_bytes().len() < 1024,
                "tile {t} serialized to {} bytes",
                s.to_bytes().len()
            );
        }
    }

    #[test]
    fn serialization_roundtrips() {
        let ctm = CtmArchive::new(4, 32).tile(1, 2);
        let s = extract(&ctm, 0.0, 800);
        let bytes = s.to_bytes();
        assert_eq!(Shoreline::from_bytes(&bytes), Some(s));
        assert_eq!(Shoreline::from_bytes(&bytes[..bytes.len() - 1]), None);
        assert_eq!(Shoreline::from_bytes(&[]), None);
    }

    #[test]
    fn contour_points_lie_near_the_level_set() {
        // Verify the interpolation: sampled contour points should evaluate
        // close to the iso level under bilinear interpolation of the grid.
        let ctm = CtmArchive::new(11, 64).tile(0, 0);
        let level = 0.0f32;
        let s = extract(&ctm, level, 100_000); // no decimation pressure
        let sample = |x: f32, y: f32| -> f32 {
            let (c, r) = (x.floor() as usize, y.floor() as usize);
            let (fx, fy) = (x - c as f32, y - r as f32);
            let c1 = (c + 1).min(ctm.size - 1);
            let r1 = (r + 1).min(ctm.size - 1);
            let v0 = ctm.at(r, c) * (1.0 - fx) + ctm.at(r, c1) * fx;
            let v1 = ctm.at(r1, c) * (1.0 - fx) + ctm.at(r1, c1) * fx;
            v0 * (1.0 - fy) + v1 * fy
        };
        let mut checked = 0;
        for line in &s.lines {
            for &(x, y) in line {
                if x.fract().abs() < 1e-6 || y.fract().abs() < 1e-6 {
                    // Edge-aligned points interpolate exactly on one axis.
                    let v = sample(x, y);
                    assert!(v.abs() < 1.0, "contour point off level set: {v}");
                    checked += 1;
                }
            }
        }
        assert!(checked > 10, "too few verifiable points");
    }

    #[test]
    fn decimation_respects_byte_budget() {
        let ctm = CtmArchive::new(21, 128).tile(3, 3);
        for budget in [128usize, 256, 512, 1000] {
            let s = extract(&ctm, 0.0, budget);
            assert!(
                s.to_bytes().len() <= budget + 16,
                "budget {budget} exceeded: {}",
                s.to_bytes().len()
            );
            for line in &s.lines {
                assert!(line.len() >= 2);
            }
        }
    }

    #[test]
    fn resample_keeps_endpoints() {
        let line: Vec<(f32, f32)> = (0..100).map(|i| (i as f32, 0.0)).collect();
        let r = resample(&line, 10);
        assert_eq!(r.len(), 10);
        assert_eq!(r[0], line[0]);
        assert_eq!(*r.last().unwrap(), *line.last().unwrap());
    }
}
