//! Procedural Coastal Terrain Models.
//!
//! A CTM is "a large matrix of a coastal area where each point denotes a
//! depth/elevation reading" (paper §IV-A). This module synthesizes such
//! matrices deterministically: tile `(tx, ty)` of a seeded archive always
//! contains the same readings, emulating a fixed file archive indexed by
//! spatiotemporal metadata.
//!
//! The terrain is multi-octave value noise added to a west-to-east coastal
//! gradient (deep water on the west edge rising to land on the east), which
//! guarantees every tile actually contains a shoreline to extract.

/// A square grid of depth/elevation readings in meters (negative = below
/// mean sea level).
#[derive(Debug, Clone, PartialEq)]
pub struct Ctm {
    /// Grid side length (readings per axis).
    pub size: usize,
    /// Row-major readings, `size * size` entries.
    pub data: Vec<f32>,
}

impl Ctm {
    /// Reading at `(row, col)`.
    #[inline]
    pub fn at(&self, row: usize, col: usize) -> f32 {
        self.data[row * self.size + col]
    }

    /// Minimum and maximum readings.
    pub fn range(&self) -> (f32, f32) {
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        for &v in &self.data {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        (lo, hi)
    }

    /// Size of the raw matrix in bytes (what a real CTM file transfer would
    /// carry).
    pub fn byte_size(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }
}

/// A deterministic archive of CTM tiles.
#[derive(Debug, Clone, Copy)]
pub struct CtmArchive {
    seed: u64,
    /// Readings per tile axis.
    pub tile_size: usize,
}

impl CtmArchive {
    /// An archive with the given seed and tile resolution.
    ///
    /// # Panics
    ///
    /// Panics if `tile_size < 8` (too coarse to carry a contour).
    pub fn new(seed: u64, tile_size: usize) -> Self {
        assert!(tile_size >= 8, "tile size must be at least 8");
        Self { seed, tile_size }
    }

    /// Generate (or, conceptually, "retrieve") the tile at `(tx, ty)`.
    pub fn tile(&self, tx: u32, ty: u32) -> Ctm {
        let n = self.tile_size;
        let mut data = Vec::with_capacity(n * n);
        let inv = 1.0 / (n - 1) as f32;
        for row in 0..n {
            for col in 0..n {
                // Global sample coordinates so adjacent tiles join up.
                let gx = tx as f64 + col as f64 * inv as f64;
                let gy = ty as f64 + row as f64 * inv as f64;
                // Coastal gradient: -30 m at the west edge of a tile to
                // +10 m at the east edge.
                let base = -30.0 + 40.0 * (col as f32 * inv);
                let relief = fbm(self.seed, gx * 4.0, gy * 4.0, 4) * 12.0;
                data.push(base + relief);
            }
        }
        Ctm { size: n, data }
    }
}

/// Multi-octave value noise ("fractional Brownian motion") in `[-1, 1]`.
fn fbm(seed: u64, x: f64, y: f64, octaves: u32) -> f32 {
    let mut sum = 0.0f32;
    let mut amp = 0.5f32;
    let mut freq = 1.0f64;
    for o in 0..octaves {
        sum += amp * value_noise(seed.wrapping_add(o as u64), x * freq, y * freq);
        amp *= 0.5;
        freq *= 2.0;
    }
    sum
}

/// Bilinear value noise over an integer lattice of hashed values in
/// `[-1, 1]`.
fn value_noise(seed: u64, x: f64, y: f64) -> f32 {
    let x0 = x.floor();
    let y0 = y.floor();
    let fx = (x - x0) as f32;
    let fy = (y - y0) as f32;
    let (ix, iy) = (x0 as i64, y0 as i64);
    let v00 = lattice(seed, ix, iy);
    let v10 = lattice(seed, ix + 1, iy);
    let v01 = lattice(seed, ix, iy + 1);
    let v11 = lattice(seed, ix + 1, iy + 1);
    // Smoothstep interpolation keeps the field C1-continuous.
    let sx = fx * fx * (3.0 - 2.0 * fx);
    let sy = fy * fy * (3.0 - 2.0 * fy);
    let a = v00 + (v10 - v00) * sx;
    let b = v01 + (v11 - v01) * sx;
    a + (b - a) * sy
}

/// Hash a lattice point to a deterministic value in `[-1, 1]`
/// (splitmix64-style mixing).
fn lattice(seed: u64, x: i64, y: i64) -> f32 {
    let mut h = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((x as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add((y as u64).wrapping_mul(0x94D0_49BB_1331_11EB));
    h ^= h >> 30;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^= h >> 31;
    // Map the top 24 bits to [-1, 1].
    ((h >> 40) as f32 / (1u32 << 23) as f32) - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiles_are_deterministic() {
        let a = CtmArchive::new(42, 64);
        assert_eq!(a.tile(3, 5), a.tile(3, 5));
        let b = CtmArchive::new(42, 64);
        assert_eq!(a.tile(3, 5), b.tile(3, 5));
    }

    #[test]
    fn different_seeds_differ() {
        let a = CtmArchive::new(1, 32).tile(0, 0);
        let b = CtmArchive::new(2, 32).tile(0, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn different_tiles_differ() {
        let a = CtmArchive::new(9, 32);
        assert_ne!(a.tile(0, 0), a.tile(0, 1));
        assert_ne!(a.tile(0, 0), a.tile(1, 0));
    }

    #[test]
    fn every_tile_crosses_sea_level() {
        // The coastal gradient guarantees both water and land in each tile,
        // so a shoreline always exists.
        let a = CtmArchive::new(123, 64);
        for tx in 0..4 {
            for ty in 0..4 {
                let (lo, hi) = a.tile(tx, ty).range();
                assert!(lo < 0.0, "tile ({tx},{ty}) has no water: min {lo}");
                assert!(hi > 0.0, "tile ({tx},{ty}) has no land: max {hi}");
            }
        }
    }

    #[test]
    fn readings_are_bounded() {
        let (lo, hi) = CtmArchive::new(77, 48).tile(2, 2).range();
        assert!(lo > -60.0 && hi < 40.0, "implausible depths: [{lo}, {hi}]");
    }

    #[test]
    fn tile_size_and_bytes() {
        let t = CtmArchive::new(0, 64).tile(0, 0);
        assert_eq!(t.size, 64);
        assert_eq!(t.data.len(), 64 * 64);
        assert_eq!(t.byte_size(), 64 * 64 * 4);
        let _ = t.at(63, 63); // corner access in bounds
    }

    #[test]
    fn noise_is_smooth_not_constant() {
        // Adjacent readings differ by less than the full range but the tile
        // is not flat.
        let t = CtmArchive::new(5, 64).tile(1, 1);
        let mut max_step = 0.0f32;
        for r in 0..t.size {
            for c in 1..t.size {
                max_step = max_step.max((t.at(r, c) - t.at(r, c - 1)).abs());
            }
        }
        assert!(max_step > 0.0, "flat tile");
        assert!(max_step < 10.0, "discontinuous tile: step {max_step}");
    }

    #[test]
    #[should_panic(expected = "at least 8")]
    fn tiny_tiles_rejected() {
        CtmArchive::new(0, 4);
    }
}
