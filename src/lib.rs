//! Umbrella crate for the **elastic cloud cache** reproduction
//! (Chiu, Shetty & Agrawal, *Elastic Cloud Caches for Accelerating
//! Service-Oriented Computations*, SC 2010).
//!
//! Re-exports every workspace crate under one roof so examples,
//! integration tests, and downstream users can depend on a single package:
//!
//! * [`ecc_core`] — the elastic cooperative cache (GBA-Insert,
//!   Sweep-and-Migrate, sliding-window eviction, contraction) and the
//!   static-N LRU baseline.
//! * [`ecc_chash`] — the consistent-hash line with explicit buckets.
//! * [`ecc_bptree`] — the linked-leaf B+-tree node index.
//! * [`ecc_spatial`] — Morton/Hilbert linearization of
//!   spatiotemporal query keys (the B²-Tree front end).
//! * [`ecc_cloudsim`] — the EC2-like substrate: virtual clock,
//!   allocation latency, billing, network model.
//! * [`ecc_shoreline`] — the shoreline-extraction service
//!   workload (procedural CTMs, tides, marching squares).
//! * [`ecc_workload`] — the paper's query-submission loop.
//! * [`ecc_net`] — a live TCP deployment of the same protocol.
//!
//! See `README.md` for a tour and `DESIGN.md` for the paper-to-code map.

#![warn(missing_docs)]

pub use ecc_bptree as bptree;
pub use ecc_chash as chash;
pub use ecc_cloudsim as cloudsim;
pub use ecc_core as core;
pub use ecc_net as net;
pub use ecc_shoreline as shoreline;
pub use ecc_spatial as spatial;
pub use ecc_workload as workload;

/// Most-used types in one import.
pub mod prelude {
    pub use ecc_bptree::{BPlusTree, ByteSize};
    pub use ecc_chash::{Arc as RingArc, HashRing};
    pub use ecc_cloudsim::{BootLatency, InstanceType, NetModel, SimClock, SimCloud};
    pub use ecc_core::{
        CacheConfig, CacheError, ElasticCache, Metrics, Record, StaticCache, WindowConfig,
    };
    pub use ecc_shoreline::service::ShorelineService;
    pub use ecc_spatial::{Curve, GeoGrid, Linearizer, Scheme, TimeGrid};
    pub use ecc_workload::driver::QueryStream;
    pub use ecc_workload::keys::KeyDist;
    pub use ecc_workload::schedule::RateSchedule;
}
