//! Quickstart: cache an expensive service with the elastic cloud cache.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! A single shoreline-extraction query takes ~23 (virtual) seconds; the
//! cache answers repeats in about a millisecond, growing its node fleet
//! only when the working set outgrows one machine.

use elastic_cloud_cache::prelude::*;

fn main() {
    // 1. The expensive backing service: shoreline extraction over a 64 Ki
    //    key space (8-bit global grid, as in the paper's evaluation).
    let service = ShorelineService::paper_default(42);

    // 2. An elastic cache on simulated EC2 Smalls. Each node holds 4096
    //    1 KiB-class records; nodes boot in 70-110 virtual seconds.
    let mut cfg = CacheConfig::paper_default();
    cfg.node_capacity_bytes = 256 * 1024; // small nodes so growth shows up
    let mut cache = ElasticCache::new(cfg);

    // 3. Query a handful of locations, some repeatedly.
    let queries = [
        (45.52, -122.68), // Portland
        (29.76, -95.37),  // Houston
        (45.52, -122.68), // Portland again — should hit
        (18.54, -72.34),  // Port-au-Prince
        (45.52, -122.68), // and again
    ];
    for &(lat, lon) in &queries {
        let key = service.linearizer().key(lat, lon, 0);
        let uncached = service.exec_time_for(key);
        let t0 = cache.clock().now_us();
        let result = cache.query(key, uncached, || {
            let out = service.execute_key(key);
            Record::from_vec(out.shoreline.to_bytes())
        });
        let took = (cache.clock().now_us() - t0) as f64 / 1e6;
        println!(
            "query ({lat:>6.2}, {lon:>7.2}) -> {:>4} B shoreline in {took:>7.3} s (virtual)",
            result.len()
        );
    }

    // 4. What did that cost?
    let m = cache.metrics();
    println!(
        "\nhits: {}  misses: {}  speedup so far: {:.2}x",
        m.hits,
        m.misses,
        m.speedup()
    );
    println!(
        "fleet: {} node(s), bill: ${:.3}",
        cache.node_count(),
        cache.cloud().billing().dollars()
    );

    // 5. Heat up a whole region to watch the fleet grow.
    println!("\ncaching 2,000 distinct tiles...");
    for i in 0..2000u64 {
        let key = (i * 32) % (1 << 16);
        let uncached = service.exec_time_for(key);
        cache.query(key, uncached, || {
            Record::from_vec(service.execute_key(key).shoreline.to_bytes())
        });
    }
    let m = cache.metrics();
    println!(
        "fleet grew to {} nodes ({} splits, {} of them allocated a new node)",
        cache.node_count(),
        m.splits,
        m.splits_with_allocation
    );
    println!(
        "cumulative speedup {:.2}x, bill ${:.2}",
        m.speedup(),
        cache.cloud().billing().dollars()
    );
}
