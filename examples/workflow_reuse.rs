//! Workflow-style reuse: composing cached derived results (the Auspice
//! integration scenario, paper §I and §V).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example workflow_reuse
//! ```
//!
//! The cache was built as a component of a service-workflow system: a
//! composite workflow asks for many intermediate derived products, and
//! later workflows reuse whatever overlapping intermediates are already
//! cached. Here, a "coastal flood assessment" workflow needs the shoreline
//! of every tile along a stretch of coast at two tide stages; a second,
//! overlapping assessment then completes mostly from cache.

use elastic_cloud_cache::prelude::*;

/// One composite workflow: shorelines for a rectangle of tiles at several
/// time slots, then a trivial aggregation over the derived products.
fn flood_assessment(
    name: &str,
    cache: &mut ElasticCache,
    service: &ShorelineService,
    tiles: impl Iterator<Item = (u32, u32)> + Clone,
    slots: &[u32],
) {
    let t0 = cache.clock().now_us();
    let before = *cache.metrics();
    let mut total_points = 0usize;
    for slot in slots {
        for (ix, iy) in tiles.clone() {
            let key = service.linearizer().key_for_cell(ix, iy, *slot);
            let uncached = service.exec_time_for(key);
            let record = cache.query(key, uncached, || {
                Record::from_vec(service.execute_key(key).shoreline.to_bytes())
            });
            // The workflow consumes the derived product (here: count
            // contour points to "assess" exposure).
            if let Some(shoreline) =
                elastic_cloud_cache::shoreline::extract::Shoreline::from_bytes(record.as_slice())
            {
                total_points += shoreline.point_count();
            }
        }
    }
    let d = cache.metrics().delta(&before);
    println!(
        "{name:<28} {:>4} service calls avoided of {:>4}  ({:>5.1}% reuse)  {:>9.1} virtual s  {} contour points",
        d.hits,
        d.queries,
        100.0 * d.hit_rate(),
        (cache.clock().now_us() - t0) as f64 / 1e6,
        total_points,
    );
}

fn main() {
    let service = ShorelineService::paper_default(7);
    let mut cfg = CacheConfig::paper_default();
    cfg.node_capacity_bytes = 2 * 1024 * 1024;
    let mut cache = ElasticCache::new(cfg);

    println!("workflow                     reuse                                  wall time");

    // Workflow A: tiles (10..18) x (20..26), one tide slot.
    flood_assessment(
        "assessment A (cold)",
        &mut cache,
        &service,
        (10..18u32).flat_map(|x| (20..26u32).map(move |y| (x, y))),
        &[0],
    );

    // Workflow B: overlapping rectangle — most intermediates are reused.
    flood_assessment(
        "assessment B (overlaps A)",
        &mut cache,
        &service,
        (12..20u32).flat_map(|x| (22..28u32).map(move |y| (x, y))),
        &[0],
    );

    // Workflow C: same area as A — full reuse.
    flood_assessment(
        "assessment C (repeat of A)",
        &mut cache,
        &service,
        (10..18u32).flat_map(|x| (20..26u32).map(move |y| (x, y))),
        &[0],
    );

    let m = cache.metrics();
    println!(
        "\ntotal: {} queries, {:.2}x faster than uncached workflows, {} cache node(s)",
        m.queries,
        m.speedup(),
        cache.node_count()
    );
}
