//! The paper's motivating scenario: a disaster triggers a query storm.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example disaster_response
//! ```
//!
//! "The catastrophic earthquake in Haiti generated massive amounts of
//! concern and activity from the general public … because service requests
//! during these situations are often related, a considerable amount of
//! redundancy among these services can be exploited." (paper §I)
//!
//! We simulate exactly that: a quiet baseline of map queries, a sudden
//! query-intensive period concentrated around one region, then waning
//! interest. The elastic cache scales up for the storm and releases the
//! nodes afterwards; the sliding window decides what to keep.

use elastic_cloud_cache::prelude::*;

fn main() {
    let service = ShorelineService::paper_default(2010);

    // m = 100 time steps, α = 0.99, baseline threshold α^(m-1) — the
    // paper's Figure 5(b) configuration.
    let mut cfg = CacheConfig::paper_default();
    cfg.ring_range = 32 * 1024;
    cfg.node_capacity_bytes = 1024 * 1024; // ~1k results per node
    cfg.window = Some(WindowConfig::paper(100));
    cfg.contraction_epsilon = 5;
    let mut cache = ElasticCache::new(cfg);

    // Quiet phase: sparse interest over the whole map. Storm phase:
    // hotspot around the affected region (keys clustered), 5x the rate.
    let quiet = QueryStream::new(RateSchedule::constant(50), KeyDist::uniform(32 * 1024), 1);
    let storm = QueryStream::new(
        RateSchedule::constant(250),
        KeyDist::hotspot(32 * 1024, 2048, 0.8),
        2,
    );

    let run_phase = |name: &str, stream: &QueryStream, steps: u64, cache: &mut ElasticCache| {
        let before = *cache.metrics();
        let mut cur_step = None;
        for (step, key) in stream.take_steps(steps) {
            if cur_step != Some(step) {
                if cur_step.is_some() {
                    cache.end_time_step();
                }
                cur_step = Some(step);
            }
            let uncached = service.exec_time_for(key);
            cache.query(key, uncached, || {
                Record::from_vec(service.execute_key(key).shoreline.to_bytes())
            });
        }
        cache.end_time_step();
        let d = cache.metrics().delta(&before);
        println!(
            "{name:<22} {:>8} {:>8.1}% {:>9.2}x {:>6} {:>10}",
            d.queries,
            100.0 * d.hit_rate(),
            d.speedup(),
            cache.node_count(),
            d.evictions,
        );
    };

    println!(
        "{:<22} {:>8} {:>9} {:>10} {:>6} {:>10}",
        "phase", "queries", "hit-rate", "speedup", "nodes", "evictions"
    );
    run_phase("baseline interest", &quiet, 100, &mut cache);
    run_phase("disaster query storm", &storm, 200, &mut cache);
    run_phase("waning interest", &quiet, 300, &mut cache);

    let m = cache.metrics();
    let bill = cache.cloud().billing();
    println!(
        "\noverall: {:.2}x speedup, peak-to-now fleet {} -> {} nodes, ${:.2} total, avg {:.1} nodes",
        m.speedup(),
        cache.cloud().total_launched(),
        cache.node_count(),
        bill.dollars(),
        bill.avg_nodes(cache.clock().now_us()),
    );
    println!(
        "window kept the hot region cached: {} merges returned capacity after the storm",
        m.merges
    );
}
