//! The cache as a real distributed system: TCP cache servers on localhost.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example live_cluster
//! ```
//!
//! Everything the simulation does — consistent-hash placement, GBA bucket
//! splits, sweep-and-migrate, sliding-window eviction, contraction — here
//! executes over real sockets against thread-backed cache servers, with
//! the shoreline service filling misses.

use elastic_cloud_cache::net::coordinator::LiveCoordinator;
use elastic_cloud_cache::prelude::*;

fn main() -> std::io::Result<()> {
    let service = ShorelineService::paper_default(99);

    // 64 KiB per node keeps the fleet small but forces real splits.
    let mut coord = LiveCoordinator::start(1 << 16, 64 * 1024)?;
    coord.enable_window(3, 0.99, 0.99f64.powi(2));

    println!("querying 600 tiles across a live TCP cluster...");
    let mut hits = 0u32;
    let mut misses = 0u32;
    for i in 0..600u64 {
        let key = (i * 109) % (1 << 16);
        match coord.get(key)? {
            Some(_) => hits += 1,
            None => {
                misses += 1;
                let out = service.execute_key(key);
                coord.put(key, out.shoreline.to_bytes())?;
            }
        }
        // Re-query a recent tile now and then so the window keeps it warm.
        if i % 5 == 0 && i > 0 {
            let warm = ((i - 1) * 109) % (1 << 16);
            if coord.get(warm)?.is_some() {
                hits += 1;
            }
        }
    }
    let (bytes, records) = coord.totals()?;
    println!(
        "cluster: {} servers ({} spawned), {} splits over the wire",
        coord.node_count(),
        coord.nodes_spawned,
        coord.splits
    );
    println!("resident: {records} records, {bytes} bytes; session: {hits} hits / {misses} misses");

    println!("\ngoing quiet: sliding window evicts, cluster contracts...");
    for _ in 0..6 {
        coord.end_time_step()?;
    }
    let (bytes, records) = coord.totals()?;
    println!(
        "after contraction: {} servers, {} merges, {records} records ({bytes} bytes) resident",
        coord.node_count(),
        coord.merges
    );

    // Finally: hammer a small standalone cluster with concurrent clients
    // to measure the raw data-path throughput.
    println!("\nconcurrent load test: 4 clients, 8,000 ops against 2 servers...");
    let s1 = elastic_cloud_cache::net::server::CacheServer::spawn(1 << 22, 64)?;
    let s2 = elastic_cloud_cache::net::server::CacheServer::spawn(1 << 22, 64)?;
    let mut ring: elastic_cloud_cache::chash::HashRing<usize> =
        elastic_cloud_cache::chash::HashRing::new(1 << 14);
    ring.insert_bucket((1 << 13) - 1, 0).unwrap();
    ring.insert_bucket((1 << 14) - 1, 1).unwrap();
    let addrs = [s1.addr(), s2.addr()];
    let report =
        elastic_cloud_cache::net::loadgen::run_load(&ring, |n| addrs[*n], 4, 8_000, 1 << 12, 512)?;
    let (p50, p95, p99) = report.latency_us;
    println!(
        "{} ops in {:.2} s  ->  {:.0} ops/s, hit rate {:.1} %, latency p50/p95/p99 = {}/{}/{} µs",
        report.ops,
        report.elapsed.as_secs_f64(),
        report.throughput(),
        100.0 * report.hits as f64 / report.ops as f64,
        p50,
        p95,
        p99
    );

    coord.shutdown()?;
    println!("all servers stopped cleanly");
    Ok(())
}
